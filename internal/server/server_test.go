package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/benchmarks"
	"repro/internal/btp"
	"repro/internal/robust"
	"repro/internal/sqlbtp"
	"repro/internal/wire"
)

// originalDepositChecking mirrors the benchmark's DepositChecking in the
// Appendix A dialect (so a patched workload can be patched back).
const originalDepositChecking = `
PROGRAM DepositChecking(:name, :amount):
  SELECT CustomerId INTO :c FROM Account WHERE Name = :name;  -- q9
  UPDATE Checking SET Balance = Balance + :amount WHERE CustomerId = :c;  -- q10
  -- @fk q10 = fC(q9)
COMMIT;
`

// patchedDepositChecking redirects the deposit into Savings — a
// semantically different program used as the PATCH payload.
const patchedDepositChecking = `
PROGRAM DepositChecking(:name, :amount):
  SELECT CustomerId INTO :c FROM Account WHERE Name = :name;  -- q1
  UPDATE Savings SET Balance = Balance + :amount WHERE CustomerId = :c;  -- q2
  -- @fk q2 = fS(q1)
COMMIT;
`

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// doJSON performs one request with a JSON body and decodes the response
// into out (when non-nil), returning the raw body and response.
func doJSON(t *testing.T, method, url string, body, out any) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		var buf bytes.Buffer
		if err := wire.WriteJSON(&buf, body); err != nil {
			t.Fatal(err)
		}
		rd = &buf
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decode %s %s: %v\n%s", method, url, err, raw)
		}
	}
	return resp, raw
}

// registerSmallBank registers the SmallBank benchmark and returns its id.
func registerSmallBank(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	var reg wire.RegisterWorkloadResponse
	resp, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads",
		&wire.RegisterWorkloadRequest{Benchmark: "smallbank"}, &reg)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d\n%s", resp.StatusCode, raw)
	}
	return reg.ID
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, raw := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(raw), "ok") {
		t.Fatalf("healthz: %d %s", resp.StatusCode, raw)
	}
}

func TestRegisterIdempotent(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	id := registerSmallBank(t, ts)
	var again wire.RegisterWorkloadResponse
	resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads",
		&wire.RegisterWorkloadRequest{Benchmark: "smallbank"}, &again)
	if resp.StatusCode != http.StatusOK || again.Created || again.ID != id {
		t.Fatalf("re-register: %d created=%t id=%s (want 200, false, %s)",
			resp.StatusCode, again.Created, again.ID, id)
	}
	if len(again.Programs) != 5 {
		t.Fatalf("programs = %v", again.Programs)
	}
}

func TestCheckEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	id := registerSmallBank(t, ts)

	// Full set under the default configuration: not robust.
	var full wire.CheckResponse
	resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/check", nil, &full)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("check: %d", resp.StatusCode)
	}
	if full.Robust || full.Witness == nil || full.Graph.Nodes != 5 {
		t.Fatalf("full SmallBank: %+v", full)
	}
	if v := resp.Header.Get("X-Workload-Version"); v != "0" {
		t.Errorf("version header = %q, want 0", v)
	}

	// The robust subset of Figure 6, by abbreviation.
	var sub wire.CheckResponse
	resp, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/check",
		&wire.CheckRequest{Programs: []string{"Am", "DC", "TS"}}, &sub)
	if resp.StatusCode != http.StatusOK || !sub.Robust || sub.Witness != nil {
		t.Fatalf("{Am,DC,TS}: %d %+v", resp.StatusCode, sub)
	}

	// Unknown program and bad setting are client errors.
	resp, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/check",
		&wire.CheckRequest{Programs: []string{"Nope"}}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown program: %d", resp.StatusCode)
	}
	resp, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/check",
		&wire.CheckRequest{Setting: "bogus"}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad setting: %d", resp.StatusCode)
	}
	resp, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/nope/check", nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown workload: %d", resp.StatusCode)
	}
}

// TestSubsetsWarmCache is the serving half of the acceptance criterion: a
// registered workload answers a repeated /subsets request byte-identically
// from the result cache (one hit, no second enumeration), and a subsequent
// /check composes its graph from the warm BlockSet underneath.
func TestSubsetsWarmCache(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	id := registerSmallBank(t, ts)

	resp1, raw1 := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/subsets", nil, nil)
	resp2, raw2 := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/subsets", nil, nil)
	if resp1.StatusCode != http.StatusOK || resp2.StatusCode != http.StatusOK {
		t.Fatalf("subsets: %d / %d", resp1.StatusCode, resp2.StatusCode)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Error("repeated /subsets responses differ")
	}
	var rep wire.SubsetsResponse
	if err := json.Unmarshal(raw1, &rep); err != nil {
		t.Fatal(err)
	}
	// Figure 6, attr+fk row: {Am, DC, TS} is a maximal robust subset.
	found := false
	for _, m := range rep.Maximal {
		if fmt.Sprint(m) == fmt.Sprint([]string{"Am", "DC", "TS"}) {
			found = true
		}
	}
	if !found {
		t.Errorf("maximal subsets %v missing {Am, DC, TS}", rep.Maximal)
	}

	// A full-set check now composes its summary graph purely from the
	// blocks the enumeration cached.
	if resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/check", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("check: %d", resp.StatusCode)
	}

	var st wire.StatsResponse
	if resp, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	if st.Workloads != 1 || len(st.WorkloadStats) != 1 {
		t.Fatalf("stats workloads = %+v", st)
	}
	ws := st.WorkloadStats[0]
	// The repeated enumeration is exactly one result-cache hit; the first
	// was its only miss.
	if ws.ResultCache.Hits != 1 || ws.ResultCache.Misses != 1 || ws.ResultCache.Entries != 1 {
		t.Errorf("result cache = %+v, want 1 hit / 1 miss / 1 entry", ws.ResultCache)
	}
	if ws.Cache.Hits == 0 {
		t.Error("post-enumeration /check should hit the warm BlockSet (cache hits = 0)")
	}
	if ws.Cache.Pairs != 25 || ws.Cache.Misses != 25 {
		t.Errorf("cache = %+v, want 25 pairs / 25 misses", ws.Cache)
	}
	if ws.Subsets != 2 || st.Requests.Subsets != 2 {
		t.Errorf("subsets counters = %d / %d, want 2", ws.Subsets, st.Requests.Subsets)
	}
	if ws.SizeBytes <= 0 || st.TotalSizeBytes != ws.SizeBytes {
		t.Errorf("size accounting: workload %d, total %d", ws.SizeBytes, st.TotalSizeBytes)
	}
}

// TestPatchIncrementalReanalysis is the PATCH half of the acceptance
// criterion: patching one program invalidates exactly its LTP pairs, the
// next check recomputes only those (miss delta), and the post-patch
// verdicts match a fresh naive-oracle run over the patched program set.
func TestPatchIncrementalReanalysis(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	id := registerSmallBank(t, ts)

	// Warm all 25 pairs.
	if resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/subsets", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm subsets: %d", resp.StatusCode)
	}

	var patch wire.PatchProgramResponse
	resp, raw := doJSON(t, http.MethodPatch, ts.URL+"/v1/workloads/"+id+"/programs/DepositChecking",
		&wire.PatchProgramRequest{SQL: patchedDepositChecking}, &patch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("patch: %d\n%s", resp.StatusCode, raw)
	}
	if patch.InvalidatedPairs != 9 || patch.Version != 1 || patch.Program != "DepositChecking" {
		t.Fatalf("patch = %+v, want 9 invalidated pairs at version 1", patch)
	}

	var before wire.StatsResponse
	doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, &before)

	var check wire.CheckResponse
	resp, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/check", nil, &check)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-patch check: %d", resp.StatusCode)
	}
	if v := resp.Header.Get("X-Workload-Version"); v != "1" {
		t.Errorf("post-patch version header = %q, want 1", v)
	}

	var after wire.StatsResponse
	doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, &after)
	missDelta := after.WorkloadStats[0].Cache.Misses - before.WorkloadStats[0].Cache.Misses
	if missDelta != 9 {
		t.Errorf("post-patch check recomputed %d pairs, want only the 9 involving the patched program", missDelta)
	}
	if got := after.WorkloadStats[0].Cache.Invalidated; got != 9 {
		t.Errorf("invalidated counter = %d, want 9", got)
	}

	// Fresh naive oracle over the patched program set.
	bench := benchmarks.SmallBank()
	next, err := sqlbtp.ParseProgram(bench.Schema, patchedDepositChecking)
	if err != nil {
		t.Fatal(err)
	}
	next.Abbrev = "DC"
	patched := bench.Programs
	for i, p := range patched {
		if p.Name == "DepositChecking" {
			patched[i] = next
		}
	}
	oracle := robust.NewChecker(bench.Schema)
	want, err := oracle.Check(patched)
	if err != nil {
		t.Fatal(err)
	}
	if check.Robust != want.Robust {
		t.Errorf("post-patch verdict robust=%t, oracle=%t", check.Robust, want.Robust)
	}

	// Patch name mismatches and bad SQL are client errors.
	resp, _ = doJSON(t, http.MethodPatch, ts.URL+"/v1/workloads/"+id+"/programs/Balance",
		&wire.PatchProgramRequest{SQL: patchedDepositChecking}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("mismatched patch: %d", resp.StatusCode)
	}
	resp, _ = doJSON(t, http.MethodPatch, ts.URL+"/v1/workloads/"+id+"/programs/DepositChecking",
		&wire.PatchProgramRequest{SQL: "PROGRAM Broken"}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("broken patch: %d", resp.StatusCode)
	}
}

func TestRegisterCustomSchema(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := &wire.RegisterWorkloadRequest{
		Schema: &wire.Schema{
			Relations: []wire.Relation{
				{Name: "Accounts", Attrs: []string{"Id", "Bal"}, Key: []string{"Id"}},
			},
		},
		ProgramsSQL: `
PROGRAM Deposit(:id, :amount):
  UPDATE Accounts SET Bal = Bal + :amount WHERE Id = :id;
COMMIT;

PROGRAM Audit(:id):
  SELECT Bal INTO :b FROM Accounts WHERE Id = :id;
COMMIT;
`,
	}
	var reg wire.RegisterWorkloadResponse
	resp, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads", req, &reg)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register custom: %d\n%s", resp.StatusCode, raw)
	}
	if fmt.Sprint(reg.Programs) != fmt.Sprint([]string{"Deposit", "Audit"}) {
		t.Fatalf("programs = %v", reg.Programs)
	}
	var check wire.CheckResponse
	resp, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+reg.ID+"/check", nil, &check)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("check custom: %d", resp.StatusCode)
	}
}

func TestRegisterErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for name, req := range map[string]*wire.RegisterWorkloadRequest{
		"empty":         {},
		"bad benchmark": {Benchmark: "bogus"},
		"bad sql": {Benchmark: "smallbank",
			ProgramsSQL: "PROGRAM Broken(:x):\n  SELECT Bal INTO :b FROM Nowhere WHERE Id = :x;\nCOMMIT;"},
	} {
		resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads", req, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestLRUEviction(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxWorkloads: 2})
	idSB := registerSmallBank(t, ts)
	var reg wire.RegisterWorkloadResponse
	doJSON(t, http.MethodPost, ts.URL+"/v1/workloads", &wire.RegisterWorkloadRequest{Benchmark: "tpcc"}, &reg)
	// Touch SmallBank so TPC-C is least recently used, then overflow.
	doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+idSB+"/check", nil, nil)
	doJSON(t, http.MethodPost, ts.URL+"/v1/workloads", &wire.RegisterWorkloadRequest{Benchmark: "auction"}, nil)

	if resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+reg.ID+"/check", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("evicted TPC-C still answers: %d", resp.StatusCode)
	}
	if resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+idSB+"/check", nil, nil); resp.StatusCode != http.StatusOK {
		t.Errorf("resident SmallBank gone: %d", resp.StatusCode)
	}
	var st wire.StatsResponse
	doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, &st)
	if st.Workloads != 2 || st.Evictions != 1 {
		t.Errorf("stats after eviction: workloads=%d evictions=%d", st.Workloads, st.Evictions)
	}
}

// TestSubsetsCoalescing holds the leader's enumeration on a test seam,
// fires a second identical request, and asserts it piggybacks on the
// in-flight one (coalesced counter) yet both get the full answer.
func TestSubsetsCoalescing(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	id := registerSmallBank(t, ts)

	entered := make(chan struct{})
	release := make(chan struct{})
	var once bool
	s.testFlightHook = func() {
		if !once { // only the first (leader) enumeration blocks
			once = true
			close(entered)
			<-release
		}
	}

	type result struct {
		raw  []byte
		code int
	}
	results := make(chan result, 2)
	fire := func() {
		resp, err := http.Post(ts.URL+"/v1/workloads/"+id+"/subsets", "application/json", nil)
		if err != nil {
			results <- result{nil, 0}
			return
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		results <- result{raw, resp.StatusCode}
	}
	go fire()
	<-entered // leader is in flight
	go fire()
	// The follower registers as a waiter before blocking; wait until the
	// coalesced counter shows it joined, then release the leader.
	for i := 0; s.coalesced.Load() == 0; i++ {
		if i > 2000 {
			t.Fatal("follower never joined the in-flight enumeration")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)

	a, b := <-results, <-results
	if a.code != http.StatusOK || b.code != http.StatusOK {
		t.Fatalf("coalesced requests: %d / %d", a.code, b.code)
	}
	if !bytes.Equal(a.raw, b.raw) {
		t.Error("coalesced responses differ")
	}
	if got := s.coalesced.Load(); got != 1 {
		t.Errorf("coalesced counter = %d, want 1", got)
	}
}

func TestGetWorkload(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	id := registerSmallBank(t, ts)
	var ws wire.WorkloadStats
	resp, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/workloads/"+id, nil, &ws)
	if resp.StatusCode != http.StatusOK || ws.ID != id || len(ws.Programs) != 5 {
		t.Fatalf("get workload: %d %+v", resp.StatusCode, ws)
	}
}

// TestRegisterAbbrevEqualsName: a program whose abbreviation equals its
// own name must not be rejected as a duplicate of itself.
func TestRegisterAbbrevEqualsName(t *testing.T) {
	s := New(Options{})
	defer s.Close()
	bench := benchmarks.SmallBank()
	p := bench.Program("Balance")
	p.Abbrev = p.Name
	defer func() { p.Abbrev = "Bal" }()
	if _, err := s.Register(bench.Schema, []*btp.Program{p}); err != nil {
		t.Fatalf("self-colliding abbreviation rejected: %v", err)
	}
}

// TestCheckRejectsDuplicateSelection: a full name and its abbreviation
// resolve to the same program; selecting both must be a client error, not
// a malformed two-node enumeration.
func TestCheckRejectsDuplicateSelection(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	id := registerSmallBank(t, ts)
	for _, path := range []string{"check", "subsets"} {
		resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/"+path,
			&wire.CheckRequest{Programs: []string{"DC", "DepositChecking"}}, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s with duplicate selection: %d, want 400", path, resp.StatusCode)
		}
	}
}

// TestReRegisterResetsDrift: re-registering pristine content after a PATCH
// must restore the registered programs instead of silently answering with
// the drifted ones.
func TestReRegisterResetsDrift(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	id := registerSmallBank(t, ts)

	var patch wire.PatchProgramResponse
	resp, _ := doJSON(t, http.MethodPatch, ts.URL+"/v1/workloads/"+id+"/programs/DepositChecking",
		&wire.PatchProgramRequest{SQL: patchedDepositChecking}, &patch)
	if resp.StatusCode != http.StatusOK || patch.Version != 1 {
		t.Fatalf("patch: %d version=%d", resp.StatusCode, patch.Version)
	}

	// Re-register the pristine benchmark: same id, but the drifted
	// workload is reset (version bumps again).
	var reg wire.RegisterWorkloadResponse
	resp, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/workloads",
		&wire.RegisterWorkloadRequest{Benchmark: "smallbank"}, &reg)
	if resp.StatusCode != http.StatusOK || reg.Created || reg.ID != id {
		t.Fatalf("re-register: %d created=%t id=%s", resp.StatusCode, reg.Created, reg.ID)
	}
	if reg.Version != 2 {
		t.Errorf("version after drift reset = %d, want 2", reg.Version)
	}

	// {Bal, DC} is robust for the original DC (Figure 6) but must be
	// checked against the restored definition, not the patched one.
	bench := benchmarks.SmallBank()
	oracle := robust.NewChecker(bench.Schema)
	want, err := oracle.Check([]*btp.Program{bench.Program("Balance"), bench.Program("DepositChecking")})
	if err != nil {
		t.Fatal(err)
	}
	var check wire.CheckResponse
	resp, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/check",
		&wire.CheckRequest{Programs: []string{"Bal", "DC"}}, &check)
	if resp.StatusCode != http.StatusOK || check.Robust != want.Robust {
		t.Errorf("post-reset {Bal,DC}: %d robust=%t, oracle=%t", resp.StatusCode, check.Robust, want.Robust)
	}

	// Re-registering again without drift must not bump the version.
	doJSON(t, http.MethodPost, ts.URL+"/v1/workloads",
		&wire.RegisterWorkloadRequest{Benchmark: "smallbank"}, &reg)
	if reg.Version != 2 {
		t.Errorf("version after no-drift re-register = %d, want 2", reg.Version)
	}
}

// TestPatchSessionRotation: after sessionRotatePatches patches the
// workload swaps in a fresh session, shedding the stale bookkeeping the
// patch history accrued.
func TestPatchSessionRotation(t *testing.T) {
	bench := benchmarks.SmallBank()
	w := newWorkload(bench.Schema, bench.Programs)
	first := w.session()
	bodies := []string{patchedDepositChecking, originalDepositChecking}
	for i := 0; i < sessionRotatePatches; i++ {
		if _, _, _, err := w.patch("DepositChecking", bodies[i%2]); err != nil {
			t.Fatalf("patch %d: %v", i, err)
		}
		rotated := w.session() != first
		if want := i == sessionRotatePatches-1; rotated != want {
			t.Fatalf("after patch %d: rotated=%t, want %t", i+1, rotated, want)
		}
	}
	if st := w.session().Stats(); st.Programs != 0 || st.Blocks.Pairs != 0 {
		t.Errorf("fresh session carries state: %+v", st)
	}
}

// TestPerRequestParallelism covers the parallelism knob's wire surface: the
// per-request field is honoured, capped by the server's -parallel option,
// and /v1/stats reports both the resolved server default and each
// workload's last effective value.
func TestPerRequestParallelism(t *testing.T) {
	_, ts := newTestServer(t, Options{Parallelism: 2})
	id := registerSmallBank(t, ts)

	readStats := func() wire.StatsResponse {
		t.Helper()
		var st wire.StatsResponse
		resp, raw := doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, &st)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stats: %d\n%s", resp.StatusCode, raw)
		}
		return st
	}
	workloadStats := func(st wire.StatsResponse) wire.WorkloadStats {
		t.Helper()
		for _, w := range st.WorkloadStats {
			if w.ID == id {
				return w
			}
		}
		t.Fatalf("workload %s missing from stats", id)
		return wire.WorkloadStats{}
	}

	st := readStats()
	if st.DefaultParallelism != 2 {
		t.Errorf("default_parallelism = %d, want the -parallel bound 2", st.DefaultParallelism)
	}
	if got := workloadStats(st).LastParallelism; got != 0 {
		t.Errorf("last_parallelism before any analysis = %d, want 0", got)
	}

	// No per-request field: the server default applies.
	var check wire.CheckResponse
	resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/check", nil, &check)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("check: %d", resp.StatusCode)
	}
	if got := workloadStats(readStats()).LastParallelism; got != 2 {
		t.Errorf("last_parallelism after default check = %d, want 2", got)
	}

	// Request below the cap: honoured verbatim.
	var seq wire.SubsetsResponse
	resp, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/subsets",
		&wire.CheckRequest{Parallelism: 1}, &seq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subsets: %d", resp.StatusCode)
	}
	if got := workloadStats(readStats()).LastParallelism; got != 1 {
		t.Errorf("last_parallelism after sequential subsets = %d, want 1", got)
	}

	// Request above the cap: clamped to the server bound, and the verdicts
	// are unchanged — parallelism never alters results.
	var capped wire.SubsetsResponse
	resp, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/subsets",
		&wire.CheckRequest{Parallelism: 64}, &capped)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("capped subsets: %d", resp.StatusCode)
	}
	if got := workloadStats(readStats()).LastParallelism; got != 2 {
		t.Errorf("last_parallelism after capped subsets = %d, want 2", got)
	}
	if fmt.Sprint(seq.Maximal) != fmt.Sprint(capped.Maximal) || fmt.Sprint(seq.Robust) != fmt.Sprint(capped.Robust) {
		t.Errorf("parallelism changed the report:\nseq:    %v\ncapped: %v", seq, capped)
	}
}

// TestPerRequestParallelismUnbounded: with no server -parallel option the
// default resolves to GOMAXPROCS, which is also the cap — a request can
// never raise the goroutine count past what the operator's machine allows
// (an unauthenticated body must not dictate a million workers).
func TestPerRequestParallelismUnbounded(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	id := registerSmallBank(t, ts)
	resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/check",
		&wire.CheckRequest{Parallelism: 1 << 20}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("check: %d", resp.StatusCode)
	}
	var st wire.StatsResponse
	if resp, raw := doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d\n%s", resp.StatusCode, raw)
	}
	if st.DefaultParallelism != runtime.GOMAXPROCS(0) {
		t.Errorf("default_parallelism = %d, want GOMAXPROCS %d", st.DefaultParallelism, runtime.GOMAXPROCS(0))
	}
	if len(st.WorkloadStats) != 1 || st.WorkloadStats[0].LastParallelism != runtime.GOMAXPROCS(0) {
		t.Errorf("workload stats = %+v, want last_parallelism capped to GOMAXPROCS %d",
			st.WorkloadStats, runtime.GOMAXPROCS(0))
	}
}

// TestCertifyEndpoint drives POST /v1/workloads/{id}/certify through its
// three verdicts: a certified counterexample for the non-robust {Bal,Am}
// pair (newly certified exactly once), a robust short-circuit for {Bal},
// and the stats counters the requests leave behind.
func TestCertifyEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	id := registerSmallBank(t, ts)

	var first wire.CertifyResponse
	resp, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/certify",
		&wire.CertifyRequest{CheckRequest: wire.CheckRequest{Programs: []string{"Bal", "Am"}}}, &first)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("certify: %d\n%s", resp.StatusCode, raw)
	}
	if v := resp.Header.Get("X-Workload-Version"); v != "0" {
		t.Errorf("version header = %q, want 0", v)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("certify response carries no X-Request-ID")
	}
	if first.Status != "certified" || !first.NewlyCertified {
		t.Fatalf("certify {Bal,Am}: %+v, want certified + newly_certified", first)
	}
	if fmt.Sprint(first.Core) != "[Am Bal]" {
		t.Errorf("core = %v, want [Am Bal]", first.Core)
	}
	c := first.Certificate
	if c == nil || c.Schedule == "" || c.Recorded == "" || len(c.Cycle) < 2 {
		t.Fatalf("certificate = %+v, want schedule + recorded + cycle", c)
	}

	// Re-certifying the same core is idempotent on the provenance bit.
	var again wire.CertifyResponse
	if resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/certify",
		&wire.CertifyRequest{CheckRequest: wire.CheckRequest{Programs: []string{"Bal", "Am"}}}, &again); resp.StatusCode != http.StatusOK {
		t.Fatalf("re-certify: %d", resp.StatusCode)
	}
	if again.Status != "certified" || again.NewlyCertified {
		t.Errorf("re-certify: %+v, want certified without newly_certified", again)
	}

	// A robust subset has nothing to certify.
	var robustResp wire.CertifyResponse
	if resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/certify",
		&wire.CertifyRequest{CheckRequest: wire.CheckRequest{Programs: []string{"Bal"}}}, &robustResp); resp.StatusCode != http.StatusOK {
		t.Fatalf("certify {Bal}: %d", resp.StatusCode)
	}
	if robustResp.Status != "robust" || robustResp.Certificate != nil || robustResp.NewlyCertified {
		t.Errorf("certify {Bal}: %+v, want plain robust verdict", robustResp)
	}

	var st wire.StatsResponse
	doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, &st)
	if st.Requests.Certify != 3 {
		t.Errorf("requests.certify = %d, want 3", st.Requests.Certify)
	}
	if st.CertifiedCores != 1 {
		t.Errorf("certified_cores = %d, want 1", st.CertifiedCores)
	}
	if st.UnrealizedCandidates != 0 {
		t.Errorf("unrealized_candidates = %d, want 0", st.UnrealizedCandidates)
	}
	if len(st.WorkloadStats) != 1 || st.WorkloadStats[0].Cache.Cores.CertifiedCores != 1 {
		t.Errorf("workload core stats = %+v, want certified_cores 1", st.WorkloadStats)
	}

	// The subsets report now carries the certified tally for the same
	// session, and its core list still covers the certified pair.
	var subs wire.SubsetsResponse
	if resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/subsets", nil, &subs); resp.StatusCode != http.StatusOK {
		t.Fatalf("subsets: %d", resp.StatusCode)
	}
	if subs.CertifiedCores != 1 {
		t.Errorf("subsets certified_cores = %d, want 1", subs.CertifiedCores)
	}
}

// TestCertifyErrors covers the endpoint's failure paths: unknown workload,
// unknown program and a malformed configuration.
func TestCertifyErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	id := registerSmallBank(t, ts)

	if resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/nope/certify", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown workload: %d, want 404", resp.StatusCode)
	}
	if resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/certify",
		&wire.CertifyRequest{CheckRequest: wire.CheckRequest{Programs: []string{"Nope"}}}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown program: %d, want 400", resp.StatusCode)
	}
	if resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/certify",
		&wire.CertifyRequest{CheckRequest: wire.CheckRequest{Setting: "bogus"}}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus setting: %d, want 400", resp.StatusCode)
	}
}
