package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

// streamLines performs one :stream request and returns the decoded verdict
// lines and the trailing summary record.
func streamLines(t *testing.T, method, url string, body any) ([]wire.StreamVerdictRecord, *wire.StreamSummaryRecord, *http.Response) {
	t.Helper()
	resp, raw := doJSON(t, method, url, body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s %s: %d\n%s", method, url, resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var verdicts []wire.StreamVerdictRecord
	var summary *wire.StreamSummaryRecord
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		if summary != nil {
			t.Fatalf("record after the summary line: %s", line)
		}
		// Distinguish the summary record by its marker field.
		var probe struct {
			Summary bool   `json:"summary"`
			Error   string `json:"error"`
		}
		if err := json.Unmarshal([]byte(line), &probe); err != nil {
			t.Fatalf("unparseable NDJSON line: %s", line)
		}
		if probe.Error != "" {
			t.Fatalf("in-band stream error: %s", probe.Error)
		}
		if probe.Summary {
			summary = &wire.StreamSummaryRecord{}
			if err := json.Unmarshal([]byte(line), summary); err != nil {
				t.Fatal(err)
			}
			continue
		}
		var v wire.StreamVerdictRecord
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Fatal(err)
		}
		verdicts = append(verdicts, v)
	}
	if summary == nil {
		t.Fatal("stream ended without a summary record")
	}
	return verdicts, summary, resp
}

// TestSubsetsStreamFirstNonRobust: the GET endpoint streams NDJSON, the
// first_non_robust mode terminates after a strict prefix of SmallBank's 31
// subsets, the summary record carries the termination and pruning
// telemetry, and /v1/stats counts the stream and the early termination.
func TestSubsetsStreamFirstNonRobust(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	id := registerSmallBank(t, ts)

	verdicts, sum, resp := streamLines(t, http.MethodGet,
		ts.URL+"/v1/workloads/"+id+"/subsets:stream?mode=first_non_robust", nil)
	if resp.Header.Get("X-Workload-Version") != "0" {
		t.Errorf("X-Workload-Version = %q", resp.Header.Get("X-Workload-Version"))
	}
	if len(verdicts) >= 31 {
		t.Errorf("first_non_robust streamed %d verdicts — no early termination", len(verdicts))
	}
	last := verdicts[len(verdicts)-1]
	if last.Robust {
		t.Errorf("terminal verdict is robust: %+v", last)
	}
	for _, v := range verdicts[:len(verdicts)-1] {
		if !v.Robust {
			t.Errorf("non-robust verdict before the terminal one: %+v", v)
		}
	}
	if !sum.EarlyTerminated || sum.Reason != "first_non_robust" || sum.Mode != "first_non_robust" {
		t.Errorf("summary = %+v", sum)
	}
	if sum.Emitted != len(verdicts) {
		t.Errorf("summary emitted %d, streamed %d lines", sum.Emitted, len(verdicts))
	}
	if sum.Checked+sum.SubsetsPruned != sum.Emitted {
		t.Errorf("checked %d + pruned %d != emitted %d", sum.Checked, sum.SubsetsPruned, sum.Emitted)
	}

	var stats wire.StatsResponse
	doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, &stats)
	if stats.Requests.Streamed < 1 || stats.Requests.EarlyTerminations < 1 {
		t.Errorf("request stats = %+v", stats.Requests)
	}
}

// TestSubsetsStreamFullMatchesMonolithic: a complete mode=all POST stream
// emits all 31 verdicts, its summary carries the exact maximal sets of the
// monolithic answer, and the result cache is cross-populated — the
// subsequent /subsets request is a stored-bytes hit.
func TestSubsetsStreamFullMatchesMonolithic(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	id := registerSmallBank(t, ts)

	verdicts, sum, _ := streamLines(t, http.MethodPost,
		ts.URL+"/v1/workloads/"+id+"/subsets:stream", &wire.StreamRequest{})
	if len(verdicts) != 31 || sum.EarlyTerminated || sum.Reason != "" {
		t.Fatalf("full stream: %d verdicts, summary %+v", len(verdicts), sum)
	}

	var mono wire.SubsetsResponse
	resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/subsets",
		&wire.CheckRequest{}, &mono)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subsets: %d", resp.StatusCode)
	}
	if fmt.Sprint(sum.Maximal) != fmt.Sprint(mono.Maximal) {
		t.Errorf("stream maximal %v != monolithic %v", sum.Maximal, mono.Maximal)
	}
	robustStreamed := 0
	for _, v := range verdicts {
		if v.Robust {
			robustStreamed++
		}
	}
	if robustStreamed != len(mono.Robust) {
		t.Errorf("stream emitted %d robust subsets, monolithic reports %d", robustStreamed, len(mono.Robust))
	}

	var stats wire.StatsResponse
	doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, &stats)
	if len(stats.WorkloadStats) != 1 || stats.WorkloadStats[0].ResultCache.Hits < 1 {
		t.Errorf("monolithic request after a full stream was not a result-cache hit: %+v", stats.WorkloadStats)
	}
}

// TestSubsetsStreamTopK: the k parameter flows through the GET query and
// the summary ranks the k largest robust subsets; k=0 with mode=top_k is
// rejected before the stream starts.
func TestSubsetsStreamTopK(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	id := registerSmallBank(t, ts)

	verdicts, sum, _ := streamLines(t, http.MethodGet,
		ts.URL+"/v1/workloads/"+id+"/subsets:stream?mode=top_k&k=2", nil)
	if len(sum.TopK) != 2 {
		t.Fatalf("top_k=2 returned %d subsets: %+v", len(sum.TopK), sum.TopK)
	}
	if len(sum.TopK[0]) < len(sum.TopK[1]) {
		t.Errorf("top-k not size-descending: %v", sum.TopK)
	}
	for _, v := range verdicts {
		if !v.Robust {
			t.Errorf("top_k streamed a non-robust verdict: %+v", v)
		}
	}

	resp, _ := doJSON(t, http.MethodGet,
		ts.URL+"/v1/workloads/"+id+"/subsets:stream?mode=top_k", nil, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("top_k without k: %d, want 400", resp.StatusCode)
	}
	resp, _ = doJSON(t, http.MethodGet,
		ts.URL+"/v1/workloads/"+id+"/subsets:stream?mode=bogus", nil, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown mode: %d, want 400", resp.StatusCode)
	}
}

// TestSubsetsStreamDisconnectCancels: closing the client connection mid-
// stream must cancel the lattice walk — the workload's detector-miss
// counter stops growing far below the full enumeration. Auction at n=11
// (2^11−1 = 2047 subsets, sequential) keeps the walk slow enough to
// observe.
func TestSubsetsStreamDisconnectCancels(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var reg wire.RegisterWorkloadResponse
	resp, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads",
		&wire.RegisterWorkloadRequest{Benchmark: "auction", N: 11}, &reg)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register auction: %d\n%s", resp.StatusCode, raw)
	}

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		ts.URL+"/v1/workloads/"+reg.ID+"/subsets:stream?parallelism=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read a couple of verdict lines to prove the stream is live, then
	// drop the connection.
	sc := bufio.NewScanner(res.Body)
	for i := 0; i < 2 && sc.Scan(); i++ {
	}
	cancel()
	res.Body.Close()

	misses := func() uint64 {
		var stats wire.StatsResponse
		doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, &stats)
		if len(stats.WorkloadStats) != 1 {
			t.Fatalf("workload stats: %+v", stats.WorkloadStats)
		}
		return stats.WorkloadStats[0].Cache.Cores.Misses
	}
	// The cancel propagates at the next emission; wait for the counter to
	// stabilize, then require it stays put well below the full lattice.
	var settled uint64
	deadline := time.Now().Add(5 * time.Second)
	for {
		a := misses()
		time.Sleep(50 * time.Millisecond)
		b := misses()
		if a == b {
			settled = b
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("detector-miss counter never settled after disconnect")
		}
	}
	time.Sleep(100 * time.Millisecond)
	if again := misses(); again != settled {
		t.Errorf("lattice walk kept running after disconnect: misses %d -> %d", settled, again)
	}
	if total := uint64(1<<11 - 1); settled >= total {
		t.Errorf("disconnected stream still enumerated the whole lattice (%d misses)", settled)
	}
}

// TestConcurrentStreamAndPatch hammers one workload with parallel streams
// (all modes) and PATCHes. Under -race this is the streaming data-race
// test; functionally every response must be an HTTP 200 whose lines all
// parse, with any engine abort surfacing as the in-band error record, and
// the server must keep serving afterwards.
func TestConcurrentStreamAndPatch(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	id := registerSmallBank(t, ts)

	var wg sync.WaitGroup
	modes := []string{"", "first_non_robust", "all_maximal_robust", "top_k&k=2", "&max_subsets=7"}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for j := 0; j < 6; j++ {
				mode := modes[(worker+j)%len(modes)]
				url := ts.URL + "/v1/workloads/" + id + "/subsets:stream?mode=" + mode
				res, err := http.Get(url)
				if err != nil {
					t.Error(err)
					return
				}
				if res.StatusCode != http.StatusOK {
					t.Errorf("stream: %d", res.StatusCode)
					res.Body.Close()
					return
				}
				sc := bufio.NewScanner(res.Body)
				for sc.Scan() {
					var probe map[string]any
					if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
						t.Errorf("unparseable line under churn: %s", sc.Bytes())
					}
				}
				res.Body.Close()
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 6; j++ {
			resp, raw := doJSON(t, http.MethodPatch,
				ts.URL+"/v1/workloads/"+id+"/programs/DepositChecking",
				&wire.PatchProgramRequest{SQL: patchedDepositChecking}, nil)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("patch: %d\n%s", resp.StatusCode, raw)
				return
			}
		}
	}()
	wg.Wait()

	// The workload still answers exactly after the churn.
	verdicts, sum, _ := streamLines(t, http.MethodGet,
		ts.URL+"/v1/workloads/"+id+"/subsets:stream", nil)
	if len(verdicts) != 31 || sum.EarlyTerminated {
		t.Errorf("post-churn full stream: %d verdicts, %+v", len(verdicts), sum)
	}
}
