package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/analysis"
	"repro/internal/wire"
)

// This file is the streaming face of the subsets enumeration:
// GET/POST /v1/workloads/{id}/subsets:stream serves the lattice walk as
// NDJSON — one wire.StreamVerdictRecord per line the moment the engine
// decides the subset, then one wire.StreamSummaryRecord (marked
// "summary": true) — so clients see the first verdicts long before the
// exponential sweep completes, and early-termination modes (mode=
// first_non_robust, all_maximal_robust, top_k, or a max_subsets budget)
// skip the rest of the sweep entirely.
//
// Streams sit outside the result cache and the in-flight coalescing:
// verdict timing is the product, so every stream runs the engine under
// its own request context — a client disconnect cancels the lattice walk
// at the next emission. The cache interplay is one-directional: a
// completed mode=all stream assembles the equivalent /subsets response
// and stores it, so the next monolithic request is a cache hit; an
// early-terminated stream contributes only the minimal non-robust cores
// it minted (merged into the session store, persisted by the debounced
// flusher), never a result-cache entry — its verdict set is partial.

// lineBufPool recycles the NDJSON line buffers and the response-encode
// buffers of the subsets handlers (the wire side of the allocs/op work;
// the engine side pools its lattice bitsets).
var lineBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func getLineBuf() *bytes.Buffer {
	b := lineBufPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

func putLineBuf(b *bytes.Buffer) { lineBufPool.Put(b) }

// streamRequest decodes the request from the JSON body (POST) or the
// query string (GET; programs may be repeated or comma-separated).
func streamRequest(r *http.Request) (*wire.StreamRequest, error) {
	var req wire.StreamRequest
	if r.Method == http.MethodPost {
		if err := decodeBody(r, &req, true); err != nil {
			return nil, fmt.Errorf("decode: %w", err)
		}
		return &req, nil
	}
	q := r.URL.Query()
	req.Setting = q.Get("setting")
	req.Method = q.Get("method")
	req.Mode = q.Get("mode")
	for _, v := range q["programs"] {
		for _, name := range strings.Split(v, ",") {
			if name = strings.TrimSpace(name); name != "" {
				req.Programs = append(req.Programs, name)
			}
		}
	}
	for _, f := range []struct {
		key string
		dst *int
	}{
		{"unfold_bound", &req.UnfoldBound},
		{"parallelism", &req.Parallelism},
		{"k", &req.K},
		{"max_subsets", &req.MaxSubsets},
	} {
		v := q.Get(f.key)
		if v == "" {
			continue
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f.key, err)
		}
		*f.dst = n
	}
	return &req, nil
}

func (s *Server) handleSubsetsStream(rw http.ResponseWriter, r *http.Request) {
	if !s.admit(rw) {
		return
	}
	defer s.admitDone()
	w := s.lookup(rw, r)
	if w == nil {
		return
	}
	defer s.release(w)
	req, err := streamRequest(r)
	if err != nil {
		writeError(rw, http.StatusBadRequest, err)
		return
	}
	mode, err := wire.ParseStreamMode(req.Mode)
	if err != nil {
		writeError(rw, http.StatusBadRequest, err)
		return
	}
	if mode == analysis.StreamTopK && req.K <= 0 {
		writeError(rw, http.StatusBadRequest, fmt.Errorf("mode top_k needs k > 0"))
		return
	}
	cfg, err := s.config(&req.CheckRequest)
	if err != nil {
		writeError(rw, http.StatusBadRequest, err)
		return
	}
	// Streams always run the engine, so they always trace: phase spans —
	// including first_verdict (time to first emitted line) — land in the
	// shared phase histogram. No SpanRecorder: there is no response document
	// to attach a timings block to.
	tracer, _ := s.requestTracer(r)
	cfg.Tracer = tracer
	programs, version, err := w.snapshot(req.Programs)
	if err != nil {
		writeError(rw, http.StatusBadRequest, err)
		return
	}
	if len(programs) > 20 {
		writeError(rw, http.StatusBadRequest,
			fmt.Errorf("subset enumeration over %d programs is infeasible", len(programs)))
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()

	// The header goes out before the first verdict: from here on errors can
	// only be reported in-band (a final {"error": ...} line) — the status
	// is already committed.
	rw.Header().Set("Content-Type", "application/x-ndjson")
	rw.Header().Set("X-Workload-Version", fmt.Sprint(version))
	rw.WriteHeader(http.StatusOK)
	flusher, _ := rw.(http.Flusher)
	writeLine := func(v any) error {
		buf := getLineBuf()
		defer putLineBuf(buf)
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		buf.Write(b)
		buf.WriteByte('\n')
		if _, err := rw.Write(buf.Bytes()); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}

	opts := analysis.StreamOptions{Mode: mode, K: req.K, MaxSubsets: req.MaxSubsets}
	sum, err := w.session().RobustSubsetsStream(ctx, programs, cfg, opts, func(v analysis.StreamVerdict) error {
		return writeLine(wire.NewStreamVerdictRecord(v))
	})
	s.streamed.Add(1)
	w.subsets.Add(1)
	w.lastParallelism.Store(int64(effectiveParallelism(cfg.Parallelism)))
	// Whatever happened, cores minted before the exit are in the session
	// store now; queue the workload so the debounced flusher persists them.
	s.markDirty(w)
	if err != nil {
		// A dead client never sees this line; a live one (engine error,
		// e.g. an unknown program after a racing PATCH) gets the uniform
		// error envelope as the stream's last record. The status is long
		// committed, so a recovered worker panic can only be flagged
		// in-band — but it still counts and logs as a server fault.
		line := wire.Error{Error: err.Error()}
		if s.noteWorkerPanic(r, err) != nil {
			line.Code = "panic"
		}
		writeLine(line)
		return
	}
	if sum.Terminated {
		s.earlyTerms.Add(1)
	}
	if err := writeLine(wire.NewStreamSummaryRecord(cfg, programs, mode, sum)); err != nil {
		return
	}
	// A complete mode=all stream carries the exact monolithic report;
	// cross-populate the /subsets result cache so the next monolithic
	// request for this (version, config, selection) is a stored-bytes hit.
	if mode == analysis.StreamAll && !sum.Terminated && sum.Report != nil {
		key := requestKey(version, cfg, programs)
		buf := getLineBuf()
		if wire.WriteJSON(buf, wire.NewSubsetsResponse(cfg, programs, sum.Report)) == nil {
			body := append([]byte(nil), buf.Bytes()...)
			if w.results.put(key, version, body) {
				s.markDirty(w)
			}
		}
		putLineBuf(buf)
	}
}
