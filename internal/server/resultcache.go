package server

import (
	"sync"
	"sync/atomic"

	"repro/internal/snapshot"
	"repro/internal/wire"
)

// resultCache memoizes complete subsets responses per workload, keyed by
// the same (version, setting, method, bound, program selection) string the
// in-flight coalescing uses — parallelism excluded, because it never
// changes verdicts. It sits *above* the coalescing: a hit costs one map
// lookup and a write of the stored bytes; a miss falls through to the
// flight layer and stores the encoded response on success.
//
// Invalidation is exactly the PATCH version bump: keys embed the workload
// version, so after a patch no stale entry can ever be looked up again, and
// the patch drops every entry of this workload eagerly to reclaim the
// memory (entries of other workloads are untouched). Entries are the
// payload of the workload's persistent snapshot, which is what lets a
// restarted server answer a repeated enumeration without re-running
// Algorithm 1 at all.
//
// The cache is unbounded per workload by design — its bytes are charged to
// the workload's size estimate, so sustained growth is what the -max-bytes
// eviction policy acts on.
type resultCache struct {
	mu      sync.Mutex
	entries map[string]resultEntry
	bytes   int64

	hits, misses, invalidated atomic.Uint64
}

// resultEntry is one cached response: the exact encoded wire bytes and the
// workload version they were computed against.
type resultEntry struct {
	version uint64
	body    []byte
}

// resultEntryBytes is the rough per-entry map overhead of the size
// estimate, on top of key and body lengths.
const resultEntryBytes = 96

func newResultCache() *resultCache {
	return &resultCache{entries: make(map[string]resultEntry)}
}

// get returns the cached response bytes for the key, counting a hit or a
// miss.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	e, ok := c.entries[key]
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
		return e.body, true
	}
	c.misses.Add(1)
	return nil, false
}

// put stores a computed response, reporting whether it was inserted (a
// coalesced follower racing the leader finds the entry already present).
func (c *resultCache) put(key string, version uint64, body []byte) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[key]; dup {
		return false
	}
	c.entries[key] = resultEntry{version: version, body: body}
	c.bytes += int64(len(key)+len(body)) + resultEntryBytes
	return true
}

// invalidate drops every entry (the PATCH path: the version just bumped, so
// none of them can hit again) and returns how many were dropped.
func (c *resultCache) invalidate() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.entries)
	clear(c.entries)
	c.bytes = 0
	c.invalidated.Add(uint64(n))
	return n
}

// sizeBytes estimates the cache's resident memory.
func (c *resultCache) sizeBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// stats snapshots the cache telemetry in wire form.
func (c *resultCache) stats() wire.ResultCacheStats {
	c.mu.Lock()
	entries := len(c.entries)
	c.mu.Unlock()
	return wire.ResultCacheStats{
		Entries:     entries,
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Invalidated: c.invalidated.Load(),
	}
}

// export snapshots the entries for persistence, sorted implicitly by map
// iteration — order is irrelevant, restore re-keys them.
func (c *resultCache) export() []snapshot.Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]snapshot.Result, 0, len(c.entries))
	for k, e := range c.entries {
		out = append(out, snapshot.Result{Key: k, Version: e.version, Body: e.body})
	}
	return out
}

// restore seeds the cache from persisted entries, keeping only those
// computed against the given (current) workload version — a snapshot
// written concurrently with a PATCH may carry entries from an older
// version, and those must not resurrect.
func (c *resultCache) restore(results []snapshot.Result, version uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range results {
		if r.Version != version || r.Key == "" || len(r.Body) == 0 {
			continue
		}
		if _, dup := c.entries[r.Key]; dup {
			continue
		}
		c.entries[r.Key] = resultEntry{version: r.Version, body: r.Body}
		c.bytes += int64(len(r.Key)+len(r.Body)) + resultEntryBytes
	}
}
