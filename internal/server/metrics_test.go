package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/wire"
)

// promDoc is a parsed Prometheus text-format scrape: the TYPE of every
// family and the value of every sample line, keyed by the full series
// (name plus rendered labels).
type promDoc struct {
	types   map[string]string
	samples map[string]float64
}

func (d *promDoc) value(t *testing.T, series string) float64 {
	t.Helper()
	v, ok := d.samples[series]
	if !ok {
		t.Fatalf("scrape has no series %q", series)
	}
	return v
}

// parseProm parses (and structurally validates) one text-format exposition:
// every non-comment line must be `series value`, and every sample must
// belong to a family declared by a preceding # TYPE line (histogram samples
// via their _bucket/_sum/_count suffixes).
func parseProm(t *testing.T, text string) *promDoc {
	t.Helper()
	doc := &promDoc{types: make(map[string]string), samples: make(map[string]float64)}
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			doc.types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment line %q", line)
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		series := line[:i]
		doc.samples[series] = v
		name := series
		if j := strings.IndexByte(series, '{'); j >= 0 {
			name = series[:j]
		}
		if _, ok := doc.types[name]; ok {
			continue
		}
		// Histogram samples carry a suffix on the family name.
		declared := false
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name && doc.types[base] == "histogram" {
				declared = true
				break
			}
		}
		if !declared {
			t.Errorf("sample %q has no TYPE declaration", series)
		}
	}
	return doc
}

func scrape(t *testing.T, ts *httptest.Server) *promDoc {
	t.Helper()
	resp, raw := doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("metrics Content-Type = %q", ct)
	}
	return parseProm(t, string(raw))
}

// TestMetricsCoversStatsCounters asserts that every counter /v1/stats
// reports is re-exported on /metrics, alongside the per-endpoint request
// families, the phase histogram and the build attribution.
func TestMetricsCoversStatsCounters(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	registerSmallBank(t, ts)
	doc := scrape(t, ts)

	families := []string{
		// Requests block of /v1/stats.
		"mvrc_api_requests_total", "mvrc_coalesced_requests_total",
		"mvrc_streamed_requests_total", "mvrc_stream_early_terminations_total",
		// Registry / eviction / persistence block.
		"mvrc_workloads", "mvrc_workloads_size_bytes", "mvrc_max_bytes",
		"mvrc_workload_evictions_total", "mvrc_workload_evictions_bytes_total",
		"mvrc_snapshots_loaded", "mvrc_snapshot_persists_total",
		"mvrc_snapshot_persist_errors_total", "mvrc_default_parallelism",
		// Robustness block: flusher retry/degradation, overload shedding
		// and recovered panics.
		"mvrc_snapshot_retries_total", "mvrc_snapshot_degraded",
		"mvrc_shed_requests_total", "mvrc_panics_total",
		// Session / block-cache block.
		"mvrc_session_programs", "mvrc_session_unfoldings",
		"mvrc_block_cache_pairs", "mvrc_block_cache_hits_total",
		"mvrc_block_cache_misses_total", "mvrc_block_cache_invalidated_total",
		// Core store block (subsets_pruned, sched_hits and friends).
		"mvrc_core_store_cores", "mvrc_core_store_covers", "mvrc_core_store_size_bytes",
		"mvrc_core_hits_total", "mvrc_cover_hits_total", "mvrc_core_misses_total",
		"mvrc_subsets_pruned_total", "mvrc_sched_checked_total", "mvrc_sched_hits_total",
		// Result cache block.
		"mvrc_result_cache_entries", "mvrc_result_cache_hits_total",
		"mvrc_result_cache_misses_total", "mvrc_result_cache_invalidated_total",
		// Observability layer's own series.
		"mvrc_http_requests_total", "mvrc_http_request_errors_total",
		"mvrc_http_in_flight_requests", "mvrc_http_request_duration_seconds",
		"mvrc_phase_duration_seconds", "mvrc_build_info", "mvrc_uptime_seconds",
		"mvrc_stats_generation",
	}
	for _, name := range families {
		if _, ok := doc.types[name]; !ok {
			t.Errorf("/metrics missing family %s", name)
		}
	}
	if doc.value(t, "mvrc_workloads") != 1 {
		t.Errorf("mvrc_workloads = %v, want 1", doc.samples["mvrc_workloads"])
	}
	if doc.value(t, `mvrc_api_requests_total{kind="register"}`) != 1 {
		t.Error("register not counted")
	}
}

// TestMetricsCountersAdvance drives register → check → PATCH → subsets and
// asserts the corresponding counters and latency-histogram sample counts
// advance monotonically between scrapes.
func TestMetricsCountersAdvance(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	id := registerSmallBank(t, ts)

	// Warm the result cache so the PATCH has something to invalidate.
	if resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/subsets", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("subsets: %d", resp.StatusCode)
	}
	before := scrape(t, ts)

	if resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/check", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("check: %d", resp.StatusCode)
	}
	if resp, raw := doJSON(t, http.MethodPatch, ts.URL+"/v1/workloads/"+id+"/programs/DepositChecking",
		&wire.PatchProgramRequest{SQL: patchedDepositChecking}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("patch: %d\n%s", resp.StatusCode, raw)
	}
	if resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/subsets", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-patch subsets: %d", resp.StatusCode)
	}
	after := scrape(t, ts)

	deltas := map[string]float64{
		`mvrc_api_requests_total{kind="check"}`:                        1,
		`mvrc_api_requests_total{kind="patch"}`:                        1,
		`mvrc_api_requests_total{kind="subsets"}`:                      1,
		`mvrc_http_requests_total{endpoint="check"}`:                   1,
		`mvrc_http_requests_total{endpoint="patch"}`:                   1,
		`mvrc_http_requests_total{endpoint="subsets"}`:                 1,
		`mvrc_http_request_duration_seconds_count{endpoint="check"}`:   1,
		`mvrc_http_request_duration_seconds_count{endpoint="subsets"}`: 1,
		`mvrc_result_cache_invalidated_total`:                          1,
		`mvrc_block_cache_invalidated_total`:                           9,
	}
	for series, want := range deltas {
		if got := after.value(t, series) - before.value(t, series); got != want {
			t.Errorf("%s advanced by %v, want %v", series, got, want)
		}
	}
	// The engine phases ran: compose and detect sample counts advanced.
	for _, phase := range []string{"compose", "detect"} {
		series := `mvrc_phase_duration_seconds_count{phase="` + phase + `"}`
		if after.value(t, series) <= before.value(t, series) {
			t.Errorf("%s did not advance", series)
		}
	}
	// Error counting: a bad request lands in the errors series.
	if resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/nope/check", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown workload: %d", resp.StatusCode)
	}
	final := scrape(t, ts)
	if final.value(t, `mvrc_http_request_errors_total{endpoint="check"}`) !=
		after.value(t, `mvrc_http_request_errors_total{endpoint="check"}`)+1 {
		t.Error("404 not counted in mvrc_http_request_errors_total")
	}
}

// TestMetricsStreamPhases is the streamed half of the acceptance criterion:
// after one streamed enumeration the phase histogram has samples for
// compose, detect, lattice_level and first_verdict, and the streamed
// request counters advanced.
func TestMetricsStreamPhases(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	id := registerSmallBank(t, ts)
	before := scrape(t, ts)

	resp, err := http.Get(ts.URL + "/v1/workloads/" + id + "/subsets:stream")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: %d %v", resp.StatusCode, err)
	}
	if !bytes.Contains(body, []byte(`"summary"`)) {
		t.Fatalf("stream did not complete:\n%s", body)
	}

	after := scrape(t, ts)
	for _, phase := range []string{
		obs.PhaseValidateUnfold, obs.PhaseCompose, obs.PhaseDetect,
		obs.PhaseLatticeLevel, obs.PhaseFirstVerdict,
	} {
		series := `mvrc_phase_duration_seconds_count{phase="` + phase + `"}`
		if after.value(t, series) <= before.value(t, series) {
			t.Errorf("%s did not advance over the stream", series)
		}
	}
	if after.value(t, "mvrc_streamed_requests_total") != before.value(t, "mvrc_streamed_requests_total")+1 {
		t.Error("mvrc_streamed_requests_total did not advance")
	}
	if after.value(t, `mvrc_http_requests_total{endpoint="subsets_stream"}`) !=
		before.value(t, `mvrc_http_requests_total{endpoint="subsets_stream"}`)+1 {
		t.Error("subsets_stream endpoint counter did not advance")
	}
}

// TestMetricsConcurrentScrapes hammers /metrics scrapes against streaming
// enumerations; under -race this is the data-race gate for the PreCollect
// registry walk vs. live sessions.
func TestMetricsConcurrentScrapes(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	id := registerSmallBank(t, ts)

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 3; j++ {
				resp, err := http.Get(ts.URL + "/v1/workloads/" + id + "/subsets:stream")
				if err != nil {
					t.Error(err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					t.Error(err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	scrape(t, ts)
}

// TestDebugTimingsCheck asserts ?debug=timings attaches the phase spans of
// that very run to a check response, and that the block is absent without
// the flag.
func TestDebugTimingsCheck(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	id := registerSmallBank(t, ts)

	var plain wire.CheckResponse
	resp, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/check", nil, &plain)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("check: %d", resp.StatusCode)
	}
	if len(plain.Timings) != 0 || bytes.Contains(raw, []byte(`"timings"`)) {
		t.Error("timings block present without ?debug=timings")
	}

	var timed wire.CheckResponse
	resp, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/check?debug=timings", nil, &timed)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("timed check: %d", resp.StatusCode)
	}
	if timed.Robust != plain.Robust {
		t.Error("?debug=timings changed the verdict")
	}
	phases := make(map[string]bool)
	for _, pt := range timed.Timings {
		phases[pt.Phase] = true
		if pt.Count == 0 {
			t.Errorf("phase %s has zero count", pt.Phase)
		}
	}
	for _, want := range []string{obs.PhaseCompose, obs.PhaseDetect} {
		if !phases[want] {
			t.Errorf("timings missing phase %s (got %v)", want, timed.Timings)
		}
	}
}

// TestDebugTimingsSubsetsBypassesCache asserts a timed subsets request
// bypasses the result cache in both directions: it is not answered from
// stored bytes (its timings are this run's), and it does not disturb the
// stored entry.
func TestDebugTimingsSubsetsBypassesCache(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	id := registerSmallBank(t, ts)

	// Fill (miss) and replay (hit) the cache.
	doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/subsets", nil, nil)
	_, cached := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/subsets", nil, nil)

	var timed wire.SubsetsResponse
	resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/subsets?debug=timings", nil, &timed)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("timed subsets: %d", resp.StatusCode)
	}
	if len(timed.Timings) == 0 {
		t.Fatal("timed subsets response has no timings block")
	}
	phases := make(map[string]bool)
	for _, pt := range timed.Timings {
		phases[pt.Phase] = true
	}
	if !phases[obs.PhaseLatticeLevel] {
		t.Errorf("subsets timings missing lattice_level: %v", timed.Timings)
	}

	// The stored entry is untouched: the next plain request replays the
	// same bytes, and the cache saw exactly one miss and two hits (none
	// from the timed request).
	_, replay := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/subsets", nil, nil)
	if !bytes.Equal(cached, replay) {
		t.Error("timed request disturbed the cached bytes")
	}
	var st wire.StatsResponse
	doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, &st)
	rc := st.WorkloadStats[0].ResultCache
	if rc.Misses != 1 || rc.Hits != 2 || rc.Entries != 1 {
		t.Errorf("result cache = %+v, want 1 miss / 2 hits / 1 entry (timed request must bypass)", rc)
	}
}

// TestHealthzBuildInfo asserts /healthz carries the build attribution and
// uptime of the version satellite.
func TestHealthzBuildInfo(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var hz wire.HealthzResponse
	resp, raw := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, &hz)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d\n%s", resp.StatusCode, raw)
	}
	if hz.Status != "ok" || hz.Version == "" || hz.Revision == "" || hz.GoVersion == "" {
		t.Errorf("healthz = %+v, want ok + full build info", hz)
	}
	if hz.UptimeSeconds < 0 {
		t.Errorf("uptime = %v", hz.UptimeSeconds)
	}
}

// TestStatsGeneration asserts the stats_generation satellite: strictly
// monotonic across responses, mirrored on /metrics.
func TestStatsGeneration(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var st1, st2 wire.StatsResponse
	doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, &st1)
	doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, &st2)
	if st1.StatsGeneration == 0 || st2.StatsGeneration <= st1.StatsGeneration {
		t.Errorf("stats_generation = %d then %d, want strictly increasing from 1",
			st1.StatsGeneration, st2.StatsGeneration)
	}
	doc := scrape(t, ts)
	if doc.value(t, "mvrc_stats_generation") != float64(st2.StatsGeneration) {
		t.Errorf("mvrc_stats_generation = %v, want %d",
			doc.samples["mvrc_stats_generation"], st2.StatsGeneration)
	}
}

// TestRequestIDPropagation asserts the middleware honors an incoming
// X-Request-ID and mints distinct ones otherwise.
func TestRequestIDPropagation(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "caller-chosen-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "caller-chosen-7" {
		t.Errorf("echoed request id = %q, want caller-chosen-7", got)
	}

	ids := make(map[string]bool)
	for i := 0; i < 2; i++ {
		resp, raw := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, nil)
		_ = raw
		id := resp.Header.Get("X-Request-ID")
		if id == "" {
			t.Fatal("no X-Request-ID minted")
		}
		ids[id] = true
	}
	if len(ids) != 2 {
		t.Errorf("minted ids not unique: %v", ids)
	}
}

// TestMetricsCertify asserts the certification series: the certify request
// counters advance, the session-level certified-core gauge follows the
// provenance bit, and the unrealized-candidates counter stays at zero for
// a realizable core.
func TestMetricsCertify(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	id := registerSmallBank(t, ts)
	before := scrape(t, ts)
	for _, name := range []string{"mvrc_certified_cores", "mvrc_unrealized_candidates_total"} {
		if _, ok := before.types[name]; !ok {
			t.Errorf("/metrics missing family %s", name)
		}
	}

	var cr wire.CertifyResponse
	if resp, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/certify",
		&wire.CertifyRequest{CheckRequest: wire.CheckRequest{Programs: []string{"Bal", "Am"}}}, &cr); resp.StatusCode != http.StatusOK {
		t.Fatalf("certify: %d\n%s", resp.StatusCode, raw)
	}
	if cr.Status != "certified" {
		t.Fatalf("certify status = %q, want certified", cr.Status)
	}

	after := scrape(t, ts)
	deltas := map[string]float64{
		`mvrc_api_requests_total{kind="certify"}`:                      1,
		`mvrc_http_requests_total{endpoint="certify"}`:                 1,
		`mvrc_http_request_duration_seconds_count{endpoint="certify"}`: 1,
		`mvrc_certified_cores`:                                         1,
		`mvrc_unrealized_candidates_total`:                             0,
	}
	for series, want := range deltas {
		if got := after.value(t, series) - before.value(t, series); got != want {
			t.Errorf("%s advanced by %v, want %v", series, got, want)
		}
	}
}
