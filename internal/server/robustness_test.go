package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/benchmarks"
	"repro/internal/faultfs"
	"repro/internal/wire"
)

// This file tests the robustness hardening of the server itself: admission
// control (overload shedding with 429 + Retry-After), panic recovery in the
// HTTP middleware and the coalesced-flight goroutine, the liveness/readiness
// split with drain semantics, and the degraded-persistence lifecycle under
// injected filesystem faults (retry with backoff, degraded health, recovery,
// and the shutdown flush's loss report).

// TestRequestTimeoutNormalization pins the Options semantics: zero means
// DefaultRequestTimeout (every request runs under a deadline unless the
// operator opts out), negative means no server-side deadline.
func TestRequestTimeoutNormalization(t *testing.T) {
	for _, tc := range []struct {
		in, want time.Duration
	}{
		{0, DefaultRequestTimeout},
		{-1, 0},
		{5 * time.Second, 5 * time.Second},
	} {
		s := New(Options{RequestTimeout: tc.in})
		if s.opts.RequestTimeout != tc.want {
			t.Errorf("RequestTimeout %v normalized to %v, want %v", tc.in, s.opts.RequestTimeout, tc.want)
		}
		s.Close()
	}
}

// decodeError decodes the uniform error envelope.
func decodeError(t *testing.T, raw []byte) wire.Error {
	t.Helper()
	var e wire.Error
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatalf("decode error envelope: %v\n%s", err, raw)
	}
	return e
}

// TestOverloadShedding saturates a MaxConcurrentChecks=1 server with one
// blocked enumeration and asserts that every further analysis request is
// shed with 429 + Retry-After + {"code": "overloaded"} while control-plane
// routes keep answering, that the in-flight request completes normally once
// unblocked, and that capacity is released afterwards.
func TestOverloadShedding(t *testing.T) {
	s, ts := newTestServer(t, Options{MaxConcurrentChecks: 1})
	id := registerSmallBank(t, ts)

	started := make(chan struct{})
	release := make(chan struct{})
	var releaseOnce sync.Once
	t.Cleanup(func() { releaseOnce.Do(func() { close(release) }) })
	s.testFlightHook = func() {
		close(started)
		<-release
	}

	leader := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/workloads/"+id+"/subsets", "application/json",
			strings.NewReader(`{"programs": ["Bal", "Am"]}`))
		if err != nil {
			leader <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		leader <- resp.StatusCode
	}()
	<-started // the only admission slot is now held by the blocked flight

	for _, probe := range []struct {
		method, path string
	}{
		{http.MethodPost, "/v1/workloads/" + id + "/check"},
		{http.MethodPost, "/v1/workloads/" + id + "/subsets"},
		{http.MethodGet, "/v1/workloads/" + id + "/subsets:stream?mode=first_non_robust"},
		{http.MethodPost, "/v1/workloads/" + id + "/certify"},
	} {
		resp, raw := doJSON(t, probe.method, ts.URL+probe.path, nil, nil)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("%s %s under saturation: %d, want 429\n%s", probe.method, probe.path, resp.StatusCode, raw)
		}
		if got := resp.Header.Get("Retry-After"); got != "1" {
			t.Errorf("%s Retry-After = %q, want \"1\"", probe.path, got)
		}
		e := decodeError(t, raw)
		if e.Code != "overloaded" || e.RetryAfterSeconds != 1 {
			t.Errorf("%s shed body = %+v, want code overloaded retry_after 1", probe.path, e)
		}
	}

	// Control-plane routes are never shed.
	for _, path := range []string{"/healthz", "/healthz/ready", "/v1/stats", "/v1/workloads/" + id} {
		if resp, raw := doJSON(t, http.MethodGet, ts.URL+path, nil, nil); resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s under saturation: %d, want 200\n%s", path, resp.StatusCode, raw)
		}
	}
	if got := s.shed.Load(); got < 4 {
		t.Errorf("shed counter = %d, want >= 4", got)
	}

	releaseOnce.Do(func() { close(release) })
	if status := <-leader; status != http.StatusOK {
		t.Fatalf("in-flight request finished %d, want 200 (overload must not cancel admitted work)", status)
	}
	// The slot is free again: a fresh analysis request is admitted.
	resp, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/check",
		&wire.CheckRequest{Programs: []string{"Bal"}}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release check: %d, want 200\n%s", resp.StatusCode, raw)
	}
}

// TestHandlerPanicRecovery drives a panicking handler through the metrics
// middleware: the client gets a structured 500 {"code": "panic"}, the panic
// is counted, and the server keeps serving.
func TestHandlerPanicRecovery(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	s.handle("GET /v1/test/panic", epStats, func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	resp, raw := doJSON(t, http.MethodGet, ts.URL+"/v1/test/panic", nil, nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler: %d, want 500\n%s", resp.StatusCode, raw)
	}
	if e := decodeError(t, raw); e.Code != "panic" || e.Error == "" {
		t.Errorf("panic body = %+v, want code \"panic\"", e)
	}
	if got := s.panics.Load(); got != 1 {
		t.Errorf("panics counter = %d, want 1", got)
	}
	if resp, _ := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("server dead after recovered panic: healthz %d", resp.StatusCode)
	}
}

// TestHandlerPanicMidResponse panics after the handler has already written:
// the committed 200 cannot be rewritten, so the middleware must abort the
// connection (the client sees a truncated body) rather than fake success —
// and still count and survive the panic.
func TestHandlerPanicMidResponse(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	s.handle("GET /v1/test/panicmid", epStats, func(rw http.ResponseWriter, _ *http.Request) {
		rw.WriteHeader(http.StatusOK)
		rw.(http.Flusher).Flush()
		panic("late")
	})
	resp, err := http.Get(ts.URL + "/v1/test/panicmid")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mid-write panic status: %d (headers were already committed)", resp.StatusCode)
	}
	if _, err := io.ReadAll(resp.Body); err == nil {
		t.Error("mid-write panic delivered a clean body; want an aborted connection")
	}
	if got := s.panics.Load(); got != 1 {
		t.Errorf("panics counter = %d, want 1", got)
	}
	if resp, _ := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("server dead after mid-write panic: healthz %d", resp.StatusCode)
	}
}

// TestFlightPanicRecovery panics inside the coalesced-flight goroutine: the
// waiting request must get a structured 500 (never hang on a closed-over
// done channel), and the flight entry must be detached so the next identical
// request starts a fresh, healthy enumeration.
func TestFlightPanicRecovery(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	id := registerSmallBank(t, ts)
	s.testFlightHook = func() { panic("flight boom") }

	req := &wire.CheckRequest{Programs: []string{"Bal", "Am"}}
	resp, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/subsets", req, nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("flight panic: %d, want 500\n%s", resp.StatusCode, raw)
	}
	if e := decodeError(t, raw); e.Code != "panic" {
		t.Errorf("flight panic body = %+v, want code \"panic\"", e)
	}
	if got := s.panics.Load(); got != 1 {
		t.Errorf("panics counter = %d, want 1", got)
	}

	s.testFlightHook = nil
	resp, raw = doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/subsets", req, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry after flight panic: %d, want 200 (stale flight entry?)\n%s", resp.StatusCode, raw)
	}
}

// TestReadyLiveDrain pins the liveness/readiness split: both answer 200 on a
// healthy server; BeginDrain flips readiness to 503 {"status": "draining"}
// while liveness and the legacy /healthz stay 200 for the requests still
// draining.
func TestReadyLiveDrain(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	var ready wire.ReadyResponse
	if resp, raw := doJSON(t, http.MethodGet, ts.URL+"/healthz/ready", nil, &ready); resp.StatusCode != http.StatusOK || ready.Status != "ready" {
		t.Fatalf("ready: %d %+v, want 200 ready\n%s", resp.StatusCode, ready, raw)
	}
	var live wire.ReadyResponse
	if resp, _ := doJSON(t, http.MethodGet, ts.URL+"/healthz/live", nil, &live); resp.StatusCode != http.StatusOK || live.Status != "live" {
		t.Fatalf("live: %d %+v, want 200 live", resp.StatusCode, live)
	}

	s.BeginDrain()
	resp, raw := doJSON(t, http.MethodGet, ts.URL+"/healthz/ready", nil, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ready while draining: %d, want 503\n%s", resp.StatusCode, raw)
	}
	var draining wire.ReadyResponse
	if err := json.Unmarshal(raw, &draining); err != nil || draining.Status != "draining" || !draining.Draining {
		t.Errorf("draining body = %+v (err %v), want status draining", draining, err)
	}
	if resp, _ := doJSON(t, http.MethodGet, ts.URL+"/healthz/live", nil, nil); resp.StatusCode != http.StatusOK {
		t.Errorf("live while draining: %d, want 200", resp.StatusCode)
	}
	if resp, _ := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, nil); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz while draining: %d, want 200", resp.StatusCode)
	}
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %v waiting for %s", d, what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestPersistDegradedHealth runs the flusher against a filesystem whose
// writes fail forever: after degradedAfterRounds consecutive failed rounds
// the server must report persistence "degraded" on /healthz, answer 503 on
// /healthz/ready (and 200 on /healthz/live — a full disk is not a reason to
// kill the process), and count snapshot retries.
func TestPersistDegradedHealth(t *testing.T) {
	inj := faultfs.NewInjector(faultfs.OS{}, &faultfs.Fault{Op: faultfs.OpWrite, Count: -1})
	s, ts := newTestServer(t, Options{
		StateDir:      t.TempDir(),
		SnapshotFS:    inj,
		FlushInterval: 2 * time.Millisecond,
	})
	registerSmallBank(t, ts) // the registration persist fails and stays dirty

	waitFor(t, 10*time.Second, "degraded persistence", func() bool { return s.degraded.Load() })
	var hz wire.HealthzResponse
	if resp, _ := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, &hz); resp.StatusCode != http.StatusOK || hz.Persistence != "degraded" {
		t.Fatalf("healthz degraded: %d persistence=%q, want 200 degraded", resp.StatusCode, hz.Persistence)
	}
	resp, raw := doJSON(t, http.MethodGet, ts.URL+"/healthz/ready", nil, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ready while degraded: %d, want 503\n%s", resp.StatusCode, raw)
	}
	var rd wire.ReadyResponse
	if err := json.Unmarshal(raw, &rd); err != nil || rd.Status != "degraded" || rd.Persistence != "degraded" {
		t.Errorf("degraded ready body = %+v (err %v)", rd, err)
	}
	if resp, _ := doJSON(t, http.MethodGet, ts.URL+"/healthz/live", nil, nil); resp.StatusCode != http.StatusOK {
		t.Errorf("live while degraded: %d, want 200", resp.StatusCode)
	}
	if got := s.snapRetries.Load(); got == 0 {
		t.Error("no snapshot retries counted while the flusher was failing")
	}
	// Requests still answer from memory while persistence is down.
	if resp, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, nil); resp.StatusCode != http.StatusOK {
		t.Errorf("stats while degraded: %d, want 200", resp.StatusCode)
	}
}

// TestPersistRetryRecovery exhausts a finite write-fault schedule and
// asserts the full retry arc: the registration persist fails, the flusher
// retries on its backoff schedule with bounded retry counts, and once the
// fault clears the workload lands on disk, health returns to "ok", and a
// fresh server restores it.
func TestPersistRetryRecovery(t *testing.T) {
	dir := t.TempDir()
	// Five writes fail (registration + four flush rounds — enough to pass
	// through the degraded threshold), then the disk heals.
	inj := faultfs.NewInjector(faultfs.OS{}, &faultfs.Fault{Op: faultfs.OpWrite, Count: 5})
	s, ts := newTestServer(t, Options{
		StateDir:      dir,
		SnapshotFS:    inj,
		FlushInterval: 2 * time.Millisecond,
	})
	registerSmallBank(t, ts)

	waitFor(t, 10*time.Second, "snapshot persisted after retries", func() bool { return s.persists.Load() >= 1 })
	waitFor(t, 10*time.Second, "degraded flag cleared", func() bool { return !s.degraded.Load() })
	var hz wire.HealthzResponse
	if resp, _ := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, &hz); resp.StatusCode != http.StatusOK || hz.Persistence != "ok" {
		t.Fatalf("healthz after recovery: %d persistence=%q, want 200 ok", resp.StatusCode, hz.Persistence)
	}
	if resp, _ := doJSON(t, http.MethodGet, ts.URL+"/healthz/ready", nil, nil); resp.StatusCode != http.StatusOK {
		t.Errorf("ready after recovery: %d, want 200", resp.StatusCode)
	}
	if got := s.snapRetries.Load(); got < 1 || got > 8 {
		t.Errorf("snapshot retries = %d, want bounded in [1, 8] for a 5-failure schedule", got)
	}

	// The snapshot that finally stuck is a valid, loadable one.
	s2 := New(Options{StateDir: dir})
	defer s2.Close()
	if loaded, skipped, err := s2.StateReport(); loaded != 1 || skipped != 0 || err != nil {
		t.Fatalf("restart after recovery: loaded=%d skipped=%d err=%v, want 1/0/nil", loaded, skipped, err)
	}
}

// TestCloseReportsUnpersisted shuts down against a filesystem that never
// accepts a write: Close must terminate after its bounded retries and
// report how many workload snapshots were lost, so cmd/robustserved can
// exit non-zero.
func TestCloseReportsUnpersisted(t *testing.T) {
	inj := faultfs.NewInjector(faultfs.OS{}, &faultfs.Fault{Op: faultfs.OpWrite, Count: -1})
	s := New(Options{
		StateDir:      t.TempDir(),
		SnapshotFS:    inj,
		FlushInterval: time.Hour, // keep the background flusher out of the way
	})
	bench := benchmarks.SmallBank()
	if _, err := s.Register(bench.Schema, bench.Programs); err != nil {
		t.Fatal(err)
	}
	err := s.Close()
	if err == nil {
		t.Fatal("Close persisted nothing yet reported success")
	}
	if !strings.Contains(err.Error(), "1 workload") {
		t.Errorf("Close error = %q, want it to name the 1 lost workload", err)
	}
}

// TestCloseFlushesDirtyWorkloads is the happy half: a dirty workload on a
// healthy filesystem is flushed by Close and the error is nil.
func TestCloseFlushesDirtyWorkloads(t *testing.T) {
	dir := t.TempDir()
	s := New(Options{StateDir: dir, FlushInterval: time.Hour})
	bench := benchmarks.SmallBank()
	reg, err := s.Register(bench.Schema, bench.Programs)
	if err != nil {
		t.Fatal(err)
	}
	w := s.reg.peek(reg.ID)
	if w == nil {
		t.Fatal("registered workload not resident")
	}
	s.markDirty(w)
	if err := s.Close(); err != nil {
		t.Fatalf("Close on healthy fs: %v", err)
	}
	s2 := New(Options{StateDir: dir})
	defer s2.Close()
	if loaded, _, _ := s2.StateReport(); loaded != 1 {
		t.Fatalf("restart loaded %d workloads, want 1", loaded)
	}
}

// TestConcurrentPatchWithFailingFlusher is the -race hammer of the retry
// path: concurrent PATCHes and checks race the background flusher while
// every other snapshot write fails, exercising dirtyMu/failedPersist and
// the persistMu serialization under contention. The fault schedule is
// finite, so by the end a consistent snapshot must land on disk.
func TestConcurrentPatchWithFailingFlusher(t *testing.T) {
	dir := t.TempDir()
	// Every other write fails for the first ~60 writes, then the disk heals.
	var faults []*faultfs.Fault
	for i := 1; i < 60; i += 2 {
		faults = append(faults, faultfs.FailOnce(faultfs.OpWrite, i))
	}
	inj := faultfs.NewInjector(faultfs.OS{}, faults...)
	s, ts := newTestServer(t, Options{
		StateDir:      dir,
		SnapshotFS:    inj,
		FlushInterval: time.Millisecond,
	})
	id := registerSmallBank(t, ts)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				if g%2 == 0 {
					sql := originalDepositChecking
					if i%2 == 0 {
						sql = patchedDepositChecking
					}
					body := fmt.Sprintf(`{"sql": %q}`, sql)
					req, err := http.NewRequest(http.MethodPatch,
						ts.URL+"/v1/workloads/"+id+"/programs/DepositChecking", strings.NewReader(body))
					if err != nil {
						t.Error(err)
						return
					}
					resp, err := http.DefaultClient.Do(req)
					if err != nil {
						t.Error(err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				} else {
					resp, err := http.Post(ts.URL+"/v1/workloads/"+id+"/check", "application/json",
						strings.NewReader(`{"programs": ["Bal", "Am"]}`))
					if err != nil {
						t.Error(err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}(g)
	}
	wg.Wait()

	if resp, _ := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("server unhealthy after hammer: %d", resp.StatusCode)
	}
	// The schedule is finite: the flusher (or shutdown flush) must be able
	// to land the final state. Close retries; a healthy disk means nil.
	waitFor(t, 10*time.Second, "a snapshot write to succeed", func() bool { return s.persists.Load() >= 1 })
	s.Flush()
	s2 := New(Options{StateDir: dir})
	defer s2.Close()
	if loaded, skipped, err := s2.StateReport(); loaded != 1 || skipped != 0 || err != nil {
		t.Fatalf("restart after hammer: loaded=%d skipped=%d err=%v, want 1/0/nil", loaded, skipped, err)
	}
}

// nopRW discards everything; the admission gate only touches the response
// writer on the shed path, which these zero-alloc measurements never take.
type nopRW struct{ h http.Header }

func (w nopRW) Header() http.Header         { return w.h }
func (w nopRW) Write(p []byte) (int, error) { return len(p), nil }
func (w nopRW) WriteHeader(int)             {}

// recoveryFrame is the panic-recovery defer the middleware adds to every
// request, in isolation.
func recoveryFrame() {
	defer func() {
		_ = recover()
	}()
}

// TestAdmissionZeroAlloc pins the per-request cost of the robustness
// middleware additions — the admission gate and the recovery frame — at
// zero allocations, both with and without a configured cap.
func TestAdmissionZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"capped", Options{MaxConcurrentChecks: 4}},
		{"unlimited", Options{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := New(tc.opts)
			defer s.Close()
			var rw http.ResponseWriter = nopRW{h: make(http.Header)}
			n := testing.AllocsPerRun(1000, func() {
				if !s.admit(rw) {
					t.Fatal("unexpected shed")
				}
				recoveryFrame()
				s.admitDone()
			})
			if n != 0 {
				t.Errorf("admission + recovery frame allocate %.1f/op, want 0", n)
			}
		})
	}
}

// BenchmarkServerOverhead measures the admission gate plus the recovery
// frame — the per-request overhead the robustness work added to every
// analysis route. Gated in CI via benchjson -gate-allocs: 0 allocs/op.
func BenchmarkServerOverhead(b *testing.B) {
	s := New(Options{MaxConcurrentChecks: 4})
	defer s.Close()
	var rw http.ResponseWriter = nopRW{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.admit(rw) {
			b.Fatal("unexpected shed")
		}
		recoveryFrame()
		s.admitDone()
	}
}
