package experiments

import (
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/btp"
	"repro/internal/robust"
	"repro/internal/summary"
)

// want asserts that the computed maximal robust subsets match the expected
// ones (order-insensitive; subsets themselves are sorted name lists).
func assertSubsets(t *testing.T, label string, got []robust.Subset, want [][]string) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: got %d maximal subsets %v, want %d %v", label, len(got), got, len(want), want)
		return
	}
	for _, w := range want {
		found := false
		for _, g := range got {
			if g.Equal(robust.Subset(w)) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: missing expected subset %v in %v", label, w, got)
		}
	}
}

func cellFor(t *testing.T, b *benchmarks.Benchmark, s summary.Setting, m summary.Method) SubsetCell {
	t.Helper()
	cell, err := RobustSubsetsCell(b, s, m)
	if err != nil {
		t.Fatalf("RobustSubsetsCell(%s, %s): %v", b.Name, s, err)
	}
	return cell
}

// TestFigure6SmallBank asserts the SmallBank column of Figure 6: maximal
// robust subsets {Am, DC, TS}, {Bal, DC}, {Bal, TS} under all four
// settings.
func TestFigure6SmallBank(t *testing.T) {
	b := benchmarks.SmallBank()
	want := [][]string{{"Am", "DC", "TS"}, {"Bal", "DC"}, {"Bal", "TS"}}
	for _, s := range summary.AllSettings {
		cell := cellFor(t, b, s, summary.TypeII)
		assertSubsets(t, "SmallBank/"+s.String(), cell.Maximal, want)
	}
}

// TestFigure6TPCC asserts the TPC-C column of Figure 6.
func TestFigure6TPCC(t *testing.T) {
	b := benchmarks.TPCC()
	base := [][]string{{"OS", "SL"}, {"NO"}}
	withFK := [][]string{{"OS", "Pay", "SL"}, {"NO", "Pay"}}
	cases := []struct {
		setting summary.Setting
		want    [][]string
	}{
		{summary.SettingTplDep, base},
		{summary.SettingAttrDep, base},
		{summary.SettingTplDepFK, base},
		{summary.SettingAttrDepFK, withFK},
	}
	for _, tc := range cases {
		cell := cellFor(t, b, tc.setting, summary.TypeII)
		assertSubsets(t, "TPC-C/"+tc.setting.String(), cell.Maximal, tc.want)
	}
}

// TestFigure6Auction asserts the Auction column of Figure 6: {FB} without
// foreign keys, the full benchmark {FB, PB} with them.
func TestFigure6Auction(t *testing.T) {
	b := benchmarks.Auction()
	cases := []struct {
		setting summary.Setting
		want    [][]string
	}{
		{summary.SettingTplDep, [][]string{{"FB"}}},
		{summary.SettingAttrDep, [][]string{{"FB"}}},
		{summary.SettingTplDepFK, [][]string{{"FB", "PB"}}},
		{summary.SettingAttrDepFK, [][]string{{"FB", "PB"}}},
	}
	for _, tc := range cases {
		cell := cellFor(t, b, tc.setting, summary.TypeII)
		assertSubsets(t, "Auction/"+tc.setting.String(), cell.Maximal, tc.want)
	}
}

// TestFigure7SmallBank asserts the SmallBank column of Figure 7 (type-I
// cycles, the method of [3]): {Am, DC, TS}, {Bal} under all settings.
func TestFigure7SmallBank(t *testing.T) {
	b := benchmarks.SmallBank()
	want := [][]string{{"Am", "DC", "TS"}, {"Bal"}}
	for _, s := range summary.AllSettings {
		cell := cellFor(t, b, s, summary.TypeI)
		assertSubsets(t, "SmallBank/"+s.String(), cell.Maximal, want)
	}
}

// TestFigure7TPCC asserts the TPC-C column of Figure 7.
func TestFigure7TPCC(t *testing.T) {
	b := benchmarks.TPCC()
	base := [][]string{{"OS", "SL"}, {"NO"}}
	withFK := [][]string{{"NO", "Pay"}, {"Pay", "SL"}, {"OS", "SL"}}
	cases := []struct {
		setting summary.Setting
		want    [][]string
	}{
		{summary.SettingTplDep, base},
		{summary.SettingAttrDep, base},
		{summary.SettingTplDepFK, base},
		{summary.SettingAttrDepFK, withFK},
	}
	for _, tc := range cases {
		cell := cellFor(t, b, tc.setting, summary.TypeI)
		assertSubsets(t, "TPC-C/"+tc.setting.String(), cell.Maximal, tc.want)
	}
}

// TestFigure7Auction asserts the Auction column of Figure 7: only the
// singletons are detected by the type-I condition, even with foreign keys.
func TestFigure7Auction(t *testing.T) {
	b := benchmarks.Auction()
	cases := []struct {
		setting summary.Setting
		want    [][]string
	}{
		{summary.SettingTplDep, [][]string{{"FB"}}},
		{summary.SettingAttrDep, [][]string{{"FB"}}},
		{summary.SettingTplDepFK, [][]string{{"PB"}, {"FB"}}},
		{summary.SettingAttrDepFK, [][]string{{"PB"}, {"FB"}}},
	}
	for _, tc := range cases {
		cell := cellFor(t, b, tc.setting, summary.TypeI)
		assertSubsets(t, "Auction/"+tc.setting.String(), cell.Maximal, tc.want)
	}
}

// TestAuctionNRobust asserts that Algorithm 2 detects Auction(n) as robust
// against MVRC for every n (Section 7.3), and that the type-I method does
// not.
func TestAuctionNRobust(t *testing.T) {
	for _, n := range []int{1, 2, 3, 6, 10} {
		b := benchmarks.AuctionN(n)
		c := robust.NewChecker(b.Schema)
		res, err := c.Check(b.Programs)
		if err != nil {
			t.Fatalf("Auction(%d): %v", n, err)
		}
		if !res.Robust {
			t.Errorf("Auction(%d): type-II analysis should report robust; witness:\n%s", n, res.Witness)
		}
		c.Method = summary.TypeI
		res, err = c.Check(b.Programs)
		if err != nil {
			t.Fatalf("Auction(%d): %v", n, err)
		}
		if res.Robust {
			t.Errorf("Auction(%d): type-I analysis should not report the full benchmark robust", n)
		}
	}
}

// TestDeliveryFalseNegative asserts the false-negative discussion of
// Section 7.2: Algorithm 2 rejects {Delivery} even though the program is in
// fact robust (two Delivery instances over the same warehouse cannot both
// delete the same oldest order).
func TestDeliveryFalseNegative(t *testing.T) {
	b := benchmarks.TPCC()
	c := robust.NewChecker(b.Schema)
	res, err := c.Check([]*btp.Program{b.Program("Delivery")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Robust {
		t.Error("{Delivery} should be reported non-robust (a known false negative)")
	}
}
