package experiments

import (
	"testing"

	"repro/internal/benchmarks"
)

// TestTable2 asserts the exact benchmark characteristics reported in
// Table 2 of the paper.
func TestTable2(t *testing.T) {
	tests := []struct {
		row       Table2Row
		relations int
		programs  int
		nodes     int
		edges     int
		cf        int
	}{
		{Table2(benchmarks.SmallBank()), 3, 5, 5, 56, 12},
		{Table2(benchmarks.TPCC()), 9, 5, 13, 396, 83},
		{Table2(benchmarks.Auction()), 3, 2, 3, 17, 1},
	}
	for _, tc := range tests {
		r := tc.row
		if r.Relations != tc.relations {
			t.Errorf("%s: relations = %d, want %d", r.Benchmark, r.Relations, tc.relations)
		}
		if r.Programs != tc.programs {
			t.Errorf("%s: programs = %d, want %d", r.Benchmark, r.Programs, tc.programs)
		}
		if r.Nodes != tc.nodes {
			t.Errorf("%s: nodes = %d, want %d", r.Benchmark, r.Nodes, tc.nodes)
		}
		if r.Edges != tc.edges {
			t.Errorf("%s: edges = %d, want %d", r.Benchmark, r.Edges, tc.edges)
		}
		if r.CounterflowEdges != tc.cf {
			t.Errorf("%s: counterflow = %d, want %d", r.Benchmark, r.CounterflowEdges, tc.cf)
		}
	}
}

// TestAuctionNClosedForm asserts the closed-form edge counts of Table 2 for
// Auction(n): 8n + 9n² edges, n counterflow.
func TestAuctionNClosedForm(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		row := Table2(benchmarks.AuctionN(n))
		wantEdges, wantCF := ExpectedAuctionNEdges(n)
		if row.Nodes != 3*n {
			t.Errorf("Auction(%d): nodes = %d, want %d", n, row.Nodes, 3*n)
		}
		if row.Edges != wantEdges {
			t.Errorf("Auction(%d): edges = %d, want %d", n, row.Edges, wantEdges)
		}
		if row.CounterflowEdges != wantCF {
			t.Errorf("Auction(%d): counterflow = %d, want %d", n, row.CounterflowEdges, wantCF)
		}
	}
}
