// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 7): Table 2 (benchmark characteristics), Figure 6
// (robust subsets via type-II cycles, Algorithm 2), Figure 7 (robust
// subsets via type-I cycles, the method of Alomari and Fekete [3]) and
// Figure 8 (scalability on Auction(n)).
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/benchmarks"
	"repro/internal/btp"
	"repro/internal/robust"
	"repro/internal/summary"
)

// Table2Row reports the summary-graph characteristics of one benchmark
// under the paper's primary setting (attribute granularity with foreign
// keys), as in Table 2.
type Table2Row struct {
	Benchmark        string
	Relations        int
	Programs         int
	Nodes            int // unfolded transaction programs
	Edges            int
	CounterflowEdges int
}

// Table2 computes the characteristics row for a benchmark.
func Table2(b *benchmarks.Benchmark) Table2Row {
	ltps := btp.UnfoldAll2(b.Programs)
	g := summary.Build(b.Schema, ltps, summary.SettingAttrDepFK)
	st := g.Stats()
	return Table2Row{
		Benchmark:        b.Name,
		Relations:        len(b.Schema.Relations()),
		Programs:         len(b.Programs),
		Nodes:            st.Nodes,
		Edges:            st.Edges,
		CounterflowEdges: st.CounterflowEdges,
	}
}

// Table2All computes Table 2 for the three fixed benchmarks.
func Table2All() []Table2Row {
	return []Table2Row{
		Table2(benchmarks.SmallBank()),
		Table2(benchmarks.TPCC()),
		Table2(benchmarks.Auction()),
	}
}

// FormatTable2 renders rows in the layout of Table 2.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %9s %9s %7s %18s\n", "benchmark", "relations", "programs", "nodes", "edges (counterflow)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %9d %9d %7d %11d (%d)\n",
			r.Benchmark, r.Relations, r.Programs, r.Nodes, r.Edges, r.CounterflowEdges)
	}
	return b.String()
}

// SubsetCell is one cell of Figure 6 / Figure 7: the maximal robust subsets
// of one benchmark under one setting and method.
type SubsetCell struct {
	Benchmark string
	Setting   summary.Setting
	Method    summary.Method
	Maximal   []robust.Subset
}

// String renders the cell's subsets, largest first.
func (c SubsetCell) String() string {
	parts := make([]string, len(c.Maximal))
	for i, s := range c.Maximal {
		parts[i] = s.String()
	}
	return strings.Join(parts, ", ")
}

// RobustSubsetsCell computes the maximal robust subsets of a benchmark
// under one setting and method.
func RobustSubsetsCell(b *benchmarks.Benchmark, setting summary.Setting, method summary.Method) (SubsetCell, error) {
	c := robust.NewChecker(b.Schema)
	c.Setting = setting
	c.Method = method
	rep, err := c.RobustSubsets(b.Programs)
	if err != nil {
		return SubsetCell{}, fmt.Errorf("experiments: %s under %s: %w", b.Name, setting, err)
	}
	return SubsetCell{Benchmark: b.Name, Setting: setting, Method: method, Maximal: rep.Maximal}, nil
}

// FigureRows computes one full figure (all four settings for every given
// benchmark) under the given method: summary.TypeII reproduces Figure 6,
// summary.TypeI reproduces Figure 7.
func FigureRows(method summary.Method, bs ...*benchmarks.Benchmark) ([]SubsetCell, error) {
	var out []SubsetCell
	for _, setting := range summary.AllSettings {
		for _, b := range bs {
			cell, err := RobustSubsetsCell(b, setting, method)
			if err != nil {
				return nil, err
			}
			out = append(out, cell)
		}
	}
	return out, nil
}

// Figure6 computes Figure 6 (Algorithm 2, type-II cycles) for the three
// benchmarks.
func Figure6() ([]SubsetCell, error) {
	return FigureRows(summary.TypeII,
		benchmarks.SmallBank(), benchmarks.TPCC(), benchmarks.Auction())
}

// Figure7 computes Figure 7 (method of [3], type-I cycles).
func Figure7() ([]SubsetCell, error) {
	return FigureRows(summary.TypeI,
		benchmarks.SmallBank(), benchmarks.TPCC(), benchmarks.Auction())
}

// FormatFigure renders figure cells grouped by setting.
func FormatFigure(cells []SubsetCell) string {
	var b strings.Builder
	bySetting := map[string][]SubsetCell{}
	var order []string
	for _, c := range cells {
		k := c.Setting.String()
		if _, ok := bySetting[k]; !ok {
			order = append(order, k)
		}
		bySetting[k] = append(bySetting[k], c)
	}
	for _, k := range order {
		fmt.Fprintf(&b, "%s:\n", k)
		for _, c := range bySetting[k] {
			fmt.Fprintf(&b, "  %-10s %s\n", c.Benchmark, c.String())
		}
	}
	return b.String()
}

// Figure8Point is one measurement of the Auction(n) scalability experiment.
type Figure8Point struct {
	N                int
	Nodes            int
	Edges            int
	CounterflowEdges int
	Robust           bool
	// BuildTime is the time to construct the summary graph; DetectTime the
	// time for the type-II cycle search; Total their sum plus unfolding.
	BuildTime  time.Duration
	DetectTime time.Duration
	Total      time.Duration
}

// Figure8 runs the Auction(n) scalability experiment for each n, repeating
// each measurement `repeats` times and keeping the median total time (the
// paper reports means of 10 runs with confidence intervals; medians are
// more stable for a reproduction).
func Figure8(ns []int, repeats int) []Figure8Point {
	if repeats < 1 {
		repeats = 1
	}
	out := make([]Figure8Point, 0, len(ns))
	for _, n := range ns {
		b := benchmarks.AuctionN(n)
		var best Figure8Point
		totals := make([]time.Duration, 0, repeats)
		for r := 0; r < repeats; r++ {
			p := measureAuctionN(b, n)
			totals = append(totals, p.Total)
			if r == 0 {
				best = p
			}
		}
		sort.Slice(totals, func(i, j int) bool { return totals[i] < totals[j] })
		best.Total = totals[len(totals)/2]
		out = append(out, best)
	}
	return out
}

func measureAuctionN(b *benchmarks.Benchmark, n int) Figure8Point {
	start := time.Now()
	ltps := btp.UnfoldAll2(b.Programs)
	t0 := time.Now()
	g := summary.Build(b.Schema, ltps, summary.SettingAttrDepFK)
	t1 := time.Now()
	robustOK, _ := g.Robust(summary.TypeII)
	t2 := time.Now()
	st := g.Stats()
	return Figure8Point{
		N: n, Nodes: st.Nodes, Edges: st.Edges, CounterflowEdges: st.CounterflowEdges,
		Robust:     robustOK,
		BuildTime:  t1.Sub(t0),
		DetectTime: t2.Sub(t1),
		Total:      t2.Sub(start),
	}
}

// FormatFigure8 renders the scalability measurements as two aligned series
// (time and edge count), mirroring the two plots of Figure 8.
func FormatFigure8(points []Figure8Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %7s %9s %13s %12s %8s\n", "n", "nodes", "edges", "counterflow", "total time", "robust")
	for _, p := range points {
		fmt.Fprintf(&b, "%6d %7d %9d %13d %12s %8t\n",
			p.N, p.Nodes, p.Edges, p.CounterflowEdges, p.Total.Round(time.Microsecond), p.Robust)
	}
	return b.String()
}

// ExpectedAuctionNEdges is the closed form of Table 2 for Auction(n):
// 8n + 9n² total edges, n of them counterflow.
func ExpectedAuctionNEdges(n int) (edges, counterflow int) {
	return 8*n + 9*n*n, n
}
