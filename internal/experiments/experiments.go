// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 7): Table 2 (benchmark characteristics), Figure 6
// (robust subsets via type-II cycles, Algorithm 2), Figure 7 (robust
// subsets via type-I cycles, the method of Alomari and Fekete [3]) and
// Figure 8 (scalability on Auction(n)).
//
// All cells of one run are computed on a Suite, which holds one
// analysis.Session per benchmark: each benchmark's programs are unfolded
// once and the pairwise edge blocks of Algorithm 1 are cached per setting,
// so the 4 settings × 2 methods × 2^n−1 subset checks behind Figures 6 and
// 7 share one incremental engine instead of rebuilding everything per cell.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/benchmarks"
	"repro/internal/btp"
	"repro/internal/robust"
	"repro/internal/summary"
)

// Suite bundles the three fixed benchmarks with their shared analysis
// sessions and the parallelism used across the analysis.
type Suite struct {
	// Parallelism bounds both the subset-enumeration worker pool per cell
	// and the intra-check sharding (edge blocks, closure fixpoint);
	// 0 means GOMAXPROCS.
	Parallelism int

	benchmarks []*benchmarks.Benchmark
	sessions   map[*benchmarks.Benchmark]*analysis.Session
}

// NewSuite creates a suite over the three fixed benchmarks of Section 7.
func NewSuite() *Suite {
	s := &Suite{sessions: map[*benchmarks.Benchmark]*analysis.Session{}}
	for _, b := range []*benchmarks.Benchmark{
		benchmarks.SmallBank(), benchmarks.TPCC(), benchmarks.Auction(),
	} {
		s.benchmarks = append(s.benchmarks, b)
	}
	return s
}

// Session returns the suite's shared session for the benchmark, creating
// it on first use. Benchmarks not constructed by the suite get their own
// session keyed by identity.
func (s *Suite) Session(b *benchmarks.Benchmark) *analysis.Session {
	sess, ok := s.sessions[b]
	if !ok {
		sess = analysis.NewSession(b.Schema)
		s.sessions[b] = sess
	}
	return sess
}

// Benchmarks returns the suite's benchmarks in Table 2 order.
func (s *Suite) Benchmarks() []*benchmarks.Benchmark { return s.benchmarks }

// Table2Row reports the summary-graph characteristics of one benchmark
// under the paper's primary setting (attribute granularity with foreign
// keys), as in Table 2.
type Table2Row struct {
	Benchmark        string
	Relations        int
	Programs         int
	Nodes            int // unfolded transaction programs
	Edges            int
	CounterflowEdges int
}

// Table2 computes the characteristics row for a benchmark on a throwaway
// session.
func Table2(b *benchmarks.Benchmark) Table2Row {
	return table2(analysis.NewSession(b.Schema), b)
}

func table2(sess *analysis.Session, b *benchmarks.Benchmark) Table2Row {
	res, err := sess.Check(b.Programs, analysis.DefaultConfig())
	if err != nil {
		panic(fmt.Sprintf("experiments: %s: %v", b.Name, err))
	}
	st := res.Graph.Stats()
	return Table2Row{
		Benchmark:        b.Name,
		Relations:        len(b.Schema.Relations()),
		Programs:         len(b.Programs),
		Nodes:            st.Nodes,
		Edges:            st.Edges,
		CounterflowEdges: st.CounterflowEdges,
	}
}

// Table2 computes Table 2 on the suite's shared sessions.
func (s *Suite) Table2() []Table2Row {
	rows := make([]Table2Row, 0, len(s.benchmarks))
	for _, b := range s.benchmarks {
		rows = append(rows, table2(s.Session(b), b))
	}
	return rows
}

// Table2All computes Table 2 for the three fixed benchmarks.
func Table2All() []Table2Row {
	return NewSuite().Table2()
}

// FormatTable2 renders rows in the layout of Table 2.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %9s %9s %7s %18s\n", "benchmark", "relations", "programs", "nodes", "edges (counterflow)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %9d %9d %7d %11d (%d)\n",
			r.Benchmark, r.Relations, r.Programs, r.Nodes, r.Edges, r.CounterflowEdges)
	}
	return b.String()
}

// SubsetCell is one cell of Figure 6 / Figure 7: the maximal robust subsets
// of one benchmark under one setting and method.
type SubsetCell struct {
	Benchmark string
	Setting   summary.Setting
	Method    summary.Method
	Maximal   []robust.Subset
}

// String renders the cell's subsets, largest first.
func (c SubsetCell) String() string {
	parts := make([]string, len(c.Maximal))
	for i, s := range c.Maximal {
		parts[i] = s.String()
	}
	return strings.Join(parts, ", ")
}

// RobustSubsetsCell computes the maximal robust subsets of a benchmark
// under one setting and method on a throwaway session.
func RobustSubsetsCell(b *benchmarks.Benchmark, setting summary.Setting, method summary.Method) (SubsetCell, error) {
	return subsetsCell(analysis.NewSession(b.Schema), 0, b, setting, method)
}

func subsetsCell(sess *analysis.Session, parallelism int, b *benchmarks.Benchmark, setting summary.Setting, method summary.Method) (SubsetCell, error) {
	cfg := analysis.Config{Setting: setting, Method: method, Parallelism: parallelism}
	rep, err := sess.RobustSubsets(b.Programs, cfg)
	if err != nil {
		return SubsetCell{}, fmt.Errorf("experiments: %s under %s: %w", b.Name, setting, err)
	}
	return SubsetCell{Benchmark: b.Name, Setting: setting, Method: method, Maximal: rep.Maximal}, nil
}

// FigureRows computes one full figure (all four settings for every given
// benchmark) under the given method on the suite's shared sessions:
// summary.TypeII reproduces Figure 6, summary.TypeI reproduces Figure 7.
func (s *Suite) FigureRows(method summary.Method) ([]SubsetCell, error) {
	var out []SubsetCell
	for _, setting := range summary.AllSettings {
		for _, b := range s.benchmarks {
			cell, err := subsetsCell(s.Session(b), s.Parallelism, b, setting, method)
			if err != nil {
				return nil, err
			}
			out = append(out, cell)
		}
	}
	return out, nil
}

// FigureRows computes one full figure for the given benchmarks on
// throwaway per-benchmark sessions (shared across the four settings).
func FigureRows(method summary.Method, bs ...*benchmarks.Benchmark) ([]SubsetCell, error) {
	sessions := make(map[*benchmarks.Benchmark]*analysis.Session, len(bs))
	for _, b := range bs {
		sessions[b] = analysis.NewSession(b.Schema)
	}
	var out []SubsetCell
	for _, setting := range summary.AllSettings {
		for _, b := range bs {
			cell, err := subsetsCell(sessions[b], 0, b, setting, method)
			if err != nil {
				return nil, err
			}
			out = append(out, cell)
		}
	}
	return out, nil
}

// Figure6 computes Figure 6 (Algorithm 2, type-II cycles).
func (s *Suite) Figure6() ([]SubsetCell, error) { return s.FigureRows(summary.TypeII) }

// Figure7 computes Figure 7 (method of [3], type-I cycles).
func (s *Suite) Figure7() ([]SubsetCell, error) { return s.FigureRows(summary.TypeI) }

// Figure6 computes Figure 6 (Algorithm 2, type-II cycles) for the three
// benchmarks.
func Figure6() ([]SubsetCell, error) {
	return NewSuite().Figure6()
}

// Figure7 computes Figure 7 (method of [3], type-I cycles).
func Figure7() ([]SubsetCell, error) {
	return NewSuite().Figure7()
}

// FormatFigure renders figure cells grouped by setting.
func FormatFigure(cells []SubsetCell) string {
	var b strings.Builder
	bySetting := map[string][]SubsetCell{}
	var order []string
	for _, c := range cells {
		k := c.Setting.String()
		if _, ok := bySetting[k]; !ok {
			order = append(order, k)
		}
		bySetting[k] = append(bySetting[k], c)
	}
	for _, k := range order {
		fmt.Fprintf(&b, "%s:\n", k)
		for _, c := range bySetting[k] {
			fmt.Fprintf(&b, "  %-10s %s\n", c.Benchmark, c.String())
		}
	}
	return b.String()
}

// Figure8Point is one measurement of the Auction(n) scalability experiment.
type Figure8Point struct {
	N                int
	Nodes            int
	Edges            int
	CounterflowEdges int
	Robust           bool
	// BuildTime is the time to construct the summary graph; DetectTime the
	// time for the type-II cycle search; Total their sum plus unfolding.
	BuildTime  time.Duration
	DetectTime time.Duration
	Total      time.Duration
}

// Figure8 runs the Auction(n) scalability experiment for each n, repeating
// each measurement `repeats` times and keeping the median total time (the
// paper reports means of 10 runs with confidence intervals; medians are
// more stable for a reproduction). Each repetition runs on a cold session,
// so the timings measure the full pipeline — unfolding, Algorithm 1 edge
// derivation and cycle detection — not cache hits. The intra-check stages
// run on GOMAXPROCS workers; Figure8Parallel takes an explicit worker
// count.
func Figure8(ns []int, repeats int) []Figure8Point {
	return Figure8Parallel(ns, repeats, 0)
}

// Figure8Parallel is Figure8 with an explicit intra-check worker count
// (0 means GOMAXPROCS, 1 reproduces the fully sequential pipeline): the
// Algorithm 1 pair derivation is sharded and the closure fixpoint runs
// round-synchronized across that many workers.
func Figure8Parallel(ns []int, repeats, parallelism int) []Figure8Point {
	if repeats < 1 {
		repeats = 1
	}
	out := make([]Figure8Point, 0, len(ns))
	for _, n := range ns {
		b := benchmarks.AuctionN(n)
		var best Figure8Point
		totals := make([]time.Duration, 0, repeats)
		for r := 0; r < repeats; r++ {
			p := measureAuctionN(b, n, parallelism)
			totals = append(totals, p.Total)
			if r == 0 {
				best = p
			}
		}
		sort.Slice(totals, func(i, j int) bool { return totals[i] < totals[j] })
		best.Total = totals[len(totals)/2]
		out = append(out, best)
	}
	return out
}

func measureAuctionN(b *benchmarks.Benchmark, n, parallelism int) Figure8Point {
	sess := analysis.NewSession(b.Schema)
	start := time.Now()
	var ltps []*btp.LTP
	for _, p := range b.Programs {
		ls, err := sess.LTPs(p, 0)
		if err != nil {
			panic(fmt.Sprintf("experiments: Auction(%d): %v", n, err))
		}
		ltps = append(ltps, ls...)
	}
	t0 := time.Now()
	bs := sess.Blocks(summary.SettingAttrDepFK)
	g, err := summary.ComposeCtx(context.Background(), bs, ltps, parallelism)
	if err != nil {
		panic(fmt.Sprintf("experiments: Auction(%d): %v", n, err))
	}
	t1 := time.Now()
	robustOK, _ := g.Robust(summary.TypeII)
	t2 := time.Now()
	st := g.Stats()
	return Figure8Point{
		N: n, Nodes: st.Nodes, Edges: st.Edges, CounterflowEdges: st.CounterflowEdges,
		Robust:     robustOK,
		BuildTime:  t1.Sub(t0),
		DetectTime: t2.Sub(t1),
		Total:      t2.Sub(start),
	}
}

// FormatFigure8 renders the scalability measurements as two aligned series
// (time and edge count), mirroring the two plots of Figure 8.
func FormatFigure8(points []Figure8Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %7s %9s %13s %12s %8s\n", "n", "nodes", "edges", "counterflow", "total time", "robust")
	for _, p := range points {
		fmt.Fprintf(&b, "%6d %7d %9d %13d %12s %8t\n",
			p.N, p.Nodes, p.Edges, p.CounterflowEdges, p.Total.Round(time.Microsecond), p.Robust)
	}
	return b.String()
}

// ExpectedAuctionNEdges is the closed form of Table 2 for Auction(n):
// 8n + 9n² total edges, n of them counterflow.
func ExpectedAuctionNEdges(n int) (edges, counterflow int) {
	return 8*n + 9*n*n, n
}
