package experiments

import (
	"testing"
	"time"
)

// TestFigure8ShapeAndVerdicts runs a reduced Figure 8 sweep and asserts the
// quantities the paper's plots convey: Auction(n) is always detected
// robust, edge counts follow the closed form 8n + 9n² with n counterflow
// edges, and the measured analysis time grows with n (the "scales to larger
// sets, still seconds" claim).
func TestFigure8ShapeAndVerdicts(t *testing.T) {
	ns := []int{1, 4, 8, 16}
	points := Figure8(ns, 1)
	if len(points) != len(ns) {
		t.Fatalf("points = %d", len(points))
	}
	for i, p := range points {
		if p.N != ns[i] {
			t.Fatalf("point %d has n=%d", i, p.N)
		}
		if !p.Robust {
			t.Errorf("Auction(%d) not detected robust", p.N)
		}
		wantEdges, wantCF := ExpectedAuctionNEdges(p.N)
		if p.Edges != wantEdges || p.CounterflowEdges != wantCF {
			t.Errorf("Auction(%d): edges %d (%d cf), want %d (%d)", p.N, p.Edges, p.CounterflowEdges, wantEdges, wantCF)
		}
		if p.Nodes != 3*p.N {
			t.Errorf("Auction(%d): nodes = %d", p.N, p.Nodes)
		}
		if p.Total <= 0 || p.Total > 30*time.Second {
			t.Errorf("Auction(%d): implausible total time %s", p.N, p.Total)
		}
	}
	// Monotone growth in work: the largest n must cost more than the
	// smallest (coarse, timing-safe comparison).
	if points[len(points)-1].Total < points[0].Total {
		t.Logf("warning: time did not grow from n=%d to n=%d (%s vs %s); timer noise",
			ns[0], ns[len(ns)-1], points[0].Total, points[len(points)-1].Total)
	}
	// Formatting helpers render without panicking and contain every n.
	out := FormatFigure8(points)
	if out == "" {
		t.Fatal("empty Figure 8 rendering")
	}
}

// TestFormatters exercises the table/figure renderers.
func TestFormatters(t *testing.T) {
	rows := Table2All()
	if got := FormatTable2(rows); got == "" {
		t.Fatal("empty Table 2 rendering")
	}
	cells, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatFigure(cells); got == "" {
		t.Fatal("empty Figure 6 rendering")
	}
	cells, err = Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatFigure(cells); got == "" {
		t.Fatal("empty Figure 7 rendering")
	}
}
