package mvcc

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/relschema"
)

func testSchema(t *testing.T) *relschema.Schema {
	t.Helper()
	s := relschema.NewSchema()
	s.MustAddRelation("Acct", []string{"id", "bal"}, []string{"id"})
	s.MustAddRelation("Log", []string{"id", "msg"}, []string{"id"})
	return s
}

func TestReadCommittedSeesLatestCommitted(t *testing.T) {
	e := NewEngine(testSchema(t))
	e.MustLoad("Acct", "a", Value{"id": "a", "bal": 100})

	reader := e.Begin(ReadCommitted)
	v, err := reader.ReadKey("Acct", "a", "bal")
	if err != nil {
		t.Fatal(err)
	}
	if v["bal"].(int) != 100 {
		t.Fatalf("bal = %v, want 100", v["bal"])
	}

	writer := e.Begin(ReadCommitted)
	if err := writer.UpdateKey("Acct", "a", []string{"bal"}, []string{"bal"}, func(r Value) Value {
		r["bal"] = 200
		return r
	}); err != nil {
		t.Fatal(err)
	}
	// Uncommitted write is invisible to the reader.
	v, err = reader.ReadKey("Acct", "a", "bal")
	if err != nil {
		t.Fatal(err)
	}
	if v["bal"].(int) != 100 {
		t.Fatalf("read-committed reader saw uncommitted value %v", v["bal"])
	}
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}
	// After commit, a new statement of the same reader sees the new value.
	v, err = reader.ReadKey("Acct", "a", "bal")
	if err != nil {
		t.Fatal(err)
	}
	if v["bal"].(int) != 200 {
		t.Fatalf("read-committed reader should see 200, got %v", v["bal"])
	}
	if err := reader.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotIsolationReadsAtTxnStart(t *testing.T) {
	e := NewEngine(testSchema(t))
	e.MustLoad("Acct", "a", Value{"id": "a", "bal": 100})

	reader := e.Begin(SnapshotIsolation)
	writer := e.Begin(ReadCommitted)
	if err := writer.UpdateKey("Acct", "a", []string{"bal"}, []string{"bal"}, func(r Value) Value {
		r["bal"] = 200
		return r
	}); err != nil {
		t.Fatal(err)
	}
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}
	v, err := reader.ReadKey("Acct", "a", "bal")
	if err != nil {
		t.Fatal(err)
	}
	if v["bal"].(int) != 100 {
		t.Fatalf("SI reader should see snapshot value 100, got %v", v["bal"])
	}
	if err := reader.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotIsolationFirstCommitterWins(t *testing.T) {
	e := NewEngine(testSchema(t))
	e.MustLoad("Acct", "a", Value{"id": "a", "bal": 100})

	t1 := e.Begin(SnapshotIsolation)
	t2 := e.Begin(ReadCommitted)
	if err := t2.UpdateKey("Acct", "a", nil, []string{"bal"}, func(r Value) Value {
		r["bal"] = 1
		return r
	}); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	err := t1.UpdateKey("Acct", "a", nil, []string{"bal"}, func(r Value) Value {
		r["bal"] = 2
		return r
	})
	if !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("expected first-committer-wins conflict, got %v", err)
	}
	t1.Abort()
}

func TestDirtyWriteImpossible(t *testing.T) {
	e := NewEngine(testSchema(t))
	e.MustLoad("Acct", "a", Value{"id": "a", "bal": 100})

	t1 := e.Begin(ReadCommitted)
	t2 := e.Begin(ReadCommitted)
	if err := t1.UpdateKey("Acct", "a", nil, []string{"bal"}, func(r Value) Value {
		r["bal"] = 1
		return r
	}); err != nil {
		t.Fatal(err)
	}
	err := t2.UpdateKey("Acct", "a", nil, []string{"bal"}, func(r Value) Value {
		r["bal"] = 2
		return r
	})
	if !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("expected write conflict (no dirty writes), got %v", err)
	}
	t2.Abort()
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	v, ok := e.ReadCommittedValue("Acct", "a")
	if !ok || v["bal"].(int) != 1 {
		t.Fatalf("committed value should be 1, got %v", v)
	}
}

func TestInsertDeleteLifecycle(t *testing.T) {
	e := NewEngine(testSchema(t))

	t1 := e.Begin(ReadCommitted)
	if err := t1.Insert("Acct", "a", Value{"id": "a", "bal": 5}); err != nil {
		t.Fatal(err)
	}
	// Invisible to others before commit.
	t2 := e.Begin(ReadCommitted)
	if _, err := t2.ReadKey("Acct", "a", "bal"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("uncommitted insert should be invisible, got err=%v", err)
	}
	t2.Abort()
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}

	// Duplicate insert rejected.
	t3 := e.Begin(ReadCommitted)
	if err := t3.Insert("Acct", "a", Value{"id": "a", "bal": 6}); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("expected duplicate key, got %v", err)
	}
	t3.Abort()

	// Delete, then reads fail and re-insert succeeds.
	t4 := e.Begin(ReadCommitted)
	if err := t4.DeleteKey("Acct", "a"); err != nil {
		t.Fatal(err)
	}
	if err := t4.Commit(); err != nil {
		t.Fatal(err)
	}
	t5 := e.Begin(ReadCommitted)
	if _, err := t5.ReadKey("Acct", "a", "bal"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted row should be gone, got err=%v", err)
	}
	if err := t5.Insert("Acct", "a", Value{"id": "a", "bal": 7}); err != nil {
		t.Fatalf("re-insert after delete: %v", err)
	}
	if err := t5.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, ok := e.ReadCommittedValue("Acct", "a"); !ok || v["bal"].(int) != 7 {
		t.Fatalf("final value should be 7, got %v ok=%v", v, ok)
	}
}

func TestSelectWherePerStatementSnapshot(t *testing.T) {
	e := NewEngine(testSchema(t))
	e.MustLoad("Acct", "a", Value{"id": "a", "bal": 10})
	e.MustLoad("Acct", "b", Value{"id": "b", "bal": 20})

	reader := e.Begin(ReadCommitted)
	rows, err := reader.SelectWhere("Acct", []string{"bal"}, []string{"id", "bal"}, func(r Value) bool {
		return r["bal"].(int) >= 15
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Key != "b" {
		t.Fatalf("expected only b, got %v", rows)
	}

	w := e.Begin(ReadCommitted)
	if err := w.UpdateKey("Acct", "a", nil, []string{"bal"}, func(r Value) Value {
		r["bal"] = 99
		return r
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	rows, err = reader.SelectWhere("Acct", []string{"bal"}, []string{"id"}, func(r Value) bool {
		return r["bal"].(int) >= 15
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("read-committed predicate should see the new committed update, got %v", rows)
	}
	if err := reader.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestSerializableConflictsAbort(t *testing.T) {
	e := NewEngine(testSchema(t))
	e.MustLoad("Acct", "a", Value{"id": "a", "bal": 10})

	t1 := e.Begin(Serializable)
	if _, err := t1.ReadKey("Acct", "a", "bal"); err != nil {
		t.Fatal(err)
	}
	t2 := e.Begin(Serializable)
	err := t2.UpdateKey("Acct", "a", nil, []string{"bal"}, func(r Value) Value {
		r["bal"] = 0
		return r
	})
	if !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("write under read lock should conflict, got %v", err)
	}
	t2.Abort()
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentTransfers checks conservation of money under concurrent
// serializable transfers (a classic engine smoke test).
func TestConcurrentTransfers(t *testing.T) {
	e := NewEngine(testSchema(t))
	e.MustLoad("Acct", "a", Value{"id": "a", "bal": 500})
	e.MustLoad("Acct", "b", Value{"id": "b", "bal": 500})

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				txn := e.Begin(Serializable)
				src, dst := "a", "b"
				if (seed+i)%2 == 0 {
					src, dst = dst, src
				}
				err := txn.UpdateKey("Acct", src, []string{"bal"}, []string{"bal"}, func(r Value) Value {
					r["bal"] = r["bal"].(int) - 1
					return r
				})
				if err == nil {
					err = txn.UpdateKey("Acct", dst, []string{"bal"}, []string{"bal"}, func(r Value) Value {
						r["bal"] = r["bal"].(int) + 1
						return r
					})
				}
				if err != nil {
					txn.Abort()
					continue
				}
				if err := txn.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	va, _ := e.ReadCommittedValue("Acct", "a")
	vb, _ := e.ReadCommittedValue("Acct", "b")
	if va["bal"].(int)+vb["bal"].(int) != 1000 {
		t.Fatalf("money not conserved: %v + %v", va["bal"], vb["bal"])
	}
}
