package mvcc

import (
	"fmt"

	"repro/internal/relschema"
)

// Txn is one transaction. Transactions are not safe for concurrent use by
// multiple goroutines; different transactions may run concurrently.
type Txn struct {
	engine *Engine
	id     int
	iso    Isolation
	// snap is the transaction-start snapshot (used under SI).
	snap int64
	// writes are the buffered uncommitted writes, applied at commit.
	writes []pendingWrite
	// writeLocked and readLocked track rows this transaction has locked.
	writeLocked []*row
	readLocked  []*row
	done        bool
	label       string
}

// pendingWrite buffers one uncommitted row mutation.
type pendingWrite struct {
	table  *table
	row    *row
	data   Value // nil for delete
	delete bool
}

// ID returns the transaction id.
func (t *Txn) ID() int { return t.id }

// SetLabel attaches a human-readable label (e.g. program name) used by the
// schedule recorder.
func (t *Txn) SetLabel(l string) { t.label = l }

// Isolation returns the transaction's isolation level.
func (t *Txn) Isolation() Isolation { return t.iso }

// statementSnap returns the snapshot sequence a new statement reads at:
// the latest committed state under Read Committed and under Serializable
// (strict two-phase locking reads current data; the locks provide safety),
// the transaction-start snapshot under Snapshot Isolation.
func (t *Txn) statementSnap() int64 {
	if t.iso == SnapshotIsolation {
		return t.snap
	}
	return t.engine.commitSeq
}

// pendingOn returns this transaction's buffered write on the row, if any.
func (t *Txn) pendingOn(r *row) *pendingWrite {
	for i := len(t.writes) - 1; i >= 0; i-- {
		if t.writes[i].row == r {
			return &t.writes[i]
		}
	}
	return nil
}

// readRow resolves the row value this transaction observes at snapshot
// snap, considering its own uncommitted writes first.
func (t *Txn) readRow(r *row, snap int64) (Value, bool) {
	if pw := t.pendingOn(r); pw != nil {
		if pw.delete {
			return nil, false
		}
		return pw.data, true
	}
	v := r.visible(snap)
	if v == nil || v.deleted {
		return nil, false
	}
	return v.data, true
}

// lockWrite acquires the row's write lock with no-wait semantics.
func (t *Txn) lockWrite(r *row) error {
	if r.writer != nil && r.writer != t {
		return fmt.Errorf("%w: row %s locked by txn %d", ErrWriteConflict, r.key, r.writer.id)
	}
	if t.iso == Serializable {
		for reader := range r.readers {
			if reader != t {
				return fmt.Errorf("%w: row %s read-locked by txn %d", ErrWriteConflict, r.key, reader.id)
			}
		}
	}
	if r.writer == nil {
		r.writer = t
		t.writeLocked = append(t.writeLocked, r)
	}
	// First-committer-wins under SI: abort if a newer committed version
	// exists than the transaction's snapshot.
	if t.iso == SnapshotIsolation {
		if v := r.latest(); v != nil && v.seq > t.snap {
			return fmt.Errorf("%w: row %s modified after snapshot", ErrWriteConflict, r.key)
		}
	}
	return nil
}

// lockRead acquires a shared read lock under Serializable (no-op at the
// other levels).
func (t *Txn) lockRead(r *row) error {
	if t.iso != Serializable {
		return nil
	}
	if r.writer != nil && r.writer != t {
		return fmt.Errorf("%w: row %s write-locked by txn %d", ErrReadConflict, r.key, r.writer.id)
	}
	if r.readers == nil {
		r.readers = map[*Txn]bool{}
	}
	if !r.readers[t] {
		r.readers[t] = true
		t.readLocked = append(t.readLocked, r)
	}
	return nil
}

// releaseLocks drops every lock held by the transaction.
func (t *Txn) releaseLocks() {
	for _, r := range t.writeLocked {
		if r.writer == t {
			r.writer = nil
		}
	}
	for _, r := range t.readLocked {
		delete(r.readers, t)
	}
	t.writeLocked = nil
	t.readLocked = nil
}

// Commit installs the transaction's writes at the next commit sequence and
// releases its locks.
func (t *Txn) Commit() error {
	e := t.engine
	e.mu.Lock()
	defer e.maybeYield() // runs after the unlock below (LIFO)
	defer e.mu.Unlock()
	if t.done {
		return ErrTxnDone
	}
	e.commitSeq++
	seq := e.commitSeq
	for _, pw := range t.writes {
		pw.row.versions = append(pw.row.versions, version{
			seq:     seq,
			data:    pw.data,
			deleted: pw.delete,
		})
	}
	t.releaseLocks()
	t.done = true
	e.commits++
	if e.recorder != nil {
		e.recorder.commit(t)
	}
	return nil
}

// Abort discards the transaction's writes and releases its locks.
func (t *Txn) Abort() {
	e := t.engine
	e.mu.Lock()
	defer e.maybeYield() // runs after the unlock below (LIFO)
	defer e.mu.Unlock()
	if t.done {
		return
	}
	t.writes = nil
	t.releaseLocks()
	t.done = true
	e.aborts++
	if e.recorder != nil {
		e.recorder.abort(t)
	}
}

// tableOf resolves a table by name.
func (t *Txn) tableOf(name string) (*table, error) {
	tb, ok := t.engine.tables[name]
	if !ok {
		return nil, fmt.Errorf("mvcc: unknown table %q", name)
	}
	return tb, nil
}

// ReadKey reads the named attributes of one row. It is one atomic
// statement: under Read Committed it observes the most recently committed
// state as of now.
func (t *Txn) ReadKey(tableName, key string, attrs ...string) (Value, error) {
	e := t.engine
	e.mu.Lock()
	defer e.maybeYield() // runs after the unlock below (LIFO)
	defer e.mu.Unlock()
	if t.done {
		return nil, ErrTxnDone
	}
	tb, err := t.tableOf(tableName)
	if err != nil {
		return nil, err
	}
	r, ok := tb.rows[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, tableName, key)
	}
	if err := t.lockRead(r); err != nil {
		return nil, err
	}
	data, ok := t.readRow(r, t.statementSnap())
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, tableName, key)
	}
	if e.recorder != nil {
		e.recorder.read(t, tableName, key, attrSet(attrs))
	}
	return project(data, attrs), nil
}

// UpdateKey atomically reads one row and applies update to produce its new
// value. readAttrs and writeAttrs declare the attributes observed and
// modified (the recorder and the BTP model need them); update receives a
// clone and returns the new full value.
func (t *Txn) UpdateKey(tableName, key string, readAttrs, writeAttrs []string, update func(Value) Value) error {
	e := t.engine
	e.mu.Lock()
	defer e.maybeYield() // runs after the unlock below (LIFO)
	defer e.mu.Unlock()
	if t.done {
		return ErrTxnDone
	}
	tb, err := t.tableOf(tableName)
	if err != nil {
		return err
	}
	r, ok := tb.rows[key]
	if !ok {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, tableName, key)
	}
	if err := t.lockWrite(r); err != nil {
		return err
	}
	data, ok := t.readRow(r, t.statementSnap())
	if !ok {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, tableName, key)
	}
	newData := update(data.Clone())
	t.writes = append(t.writes, pendingWrite{table: tb, row: r, data: newData})
	if e.recorder != nil {
		e.recorder.update(t, tableName, key, attrSet(readAttrs), attrSet(writeAttrs))
	}
	return nil
}

// Insert creates a row. The new row becomes visible to others at commit.
func (t *Txn) Insert(tableName, key string, v Value) error {
	e := t.engine
	e.mu.Lock()
	defer e.maybeYield() // runs after the unlock below (LIFO)
	defer e.mu.Unlock()
	if t.done {
		return ErrTxnDone
	}
	tb, err := t.tableOf(tableName)
	if err != nil {
		return err
	}
	r, ok := tb.rows[key]
	if !ok {
		r = &row{key: key}
		tb.rows[key] = r
	} else if lv := r.latest(); lv != nil && !lv.deleted {
		return fmt.Errorf("%w: %s/%s", ErrDuplicateKey, tableName, key)
	} else if _, visible := t.readRow(r, t.statementSnap()); visible {
		return fmt.Errorf("%w: %s/%s", ErrDuplicateKey, tableName, key)
	}
	if err := t.lockWrite(r); err != nil {
		return err
	}
	t.writes = append(t.writes, pendingWrite{table: tb, row: r, data: v.Clone()})
	if e.recorder != nil {
		e.recorder.insert(t, tableName, key, tb.rel.Attrs)
	}
	return nil
}

// DeleteKey deletes one row by key.
func (t *Txn) DeleteKey(tableName, key string) error {
	e := t.engine
	e.mu.Lock()
	defer e.maybeYield() // runs after the unlock below (LIFO)
	defer e.mu.Unlock()
	if t.done {
		return ErrTxnDone
	}
	tb, err := t.tableOf(tableName)
	if err != nil {
		return err
	}
	r, ok := tb.rows[key]
	if !ok {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, tableName, key)
	}
	if err := t.lockWrite(r); err != nil {
		return err
	}
	if _, visible := t.readRow(r, t.statementSnap()); !visible {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, tableName, key)
	}
	t.writes = append(t.writes, pendingWrite{table: tb, row: r, delete: true})
	if e.recorder != nil {
		e.recorder.delete(t, tableName, key, tb.rel.Attrs)
	}
	return nil
}

// Row is one result of a predicate statement.
type Row struct {
	Key   string
	Value Value
}

// SelectWhere evaluates pred over every visible row of the table as one
// atomic statement (the predicate read of the formalism) and returns the
// matching rows' readAttrs projections. predAttrs declares the attributes
// the predicate inspects.
func (t *Txn) SelectWhere(tableName string, predAttrs, readAttrs []string, pred func(Value) bool) ([]Row, error) {
	e := t.engine
	e.mu.Lock()
	defer e.maybeYield() // runs after the unlock below (LIFO)
	defer e.mu.Unlock()
	if t.done {
		return nil, ErrTxnDone
	}
	tb, err := t.tableOf(tableName)
	if err != nil {
		return nil, err
	}
	snap := t.statementSnap()
	var out []Row
	var matched []string
	for _, key := range tb.sortedKeys() {
		r := tb.rows[key]
		if t.iso == Serializable {
			if err := t.lockRead(r); err != nil {
				return nil, err
			}
		}
		data, ok := t.readRow(r, snap)
		if !ok || !pred(data) {
			continue
		}
		matched = append(matched, key)
		out = append(out, Row{Key: key, Value: project(data, readAttrs)})
	}
	if e.recorder != nil {
		e.recorder.predSelect(t, tableName, attrSet(predAttrs), attrSet(readAttrs), matched)
	}
	return out, nil
}

// UpdateWhere atomically updates every visible row matching pred.
func (t *Txn) UpdateWhere(tableName string, predAttrs, readAttrs, writeAttrs []string,
	pred func(Value) bool, update func(Value) Value) (int, error) {
	e := t.engine
	e.mu.Lock()
	defer e.maybeYield() // runs after the unlock below (LIFO)
	defer e.mu.Unlock()
	if t.done {
		return 0, ErrTxnDone
	}
	tb, err := t.tableOf(tableName)
	if err != nil {
		return 0, err
	}
	snap := t.statementSnap()
	count := 0
	var matched []string
	for _, key := range tb.sortedKeys() {
		r := tb.rows[key]
		data, ok := t.readRow(r, snap)
		if !ok || !pred(data) {
			continue
		}
		if err := t.lockWrite(r); err != nil {
			return count, err
		}
		t.writes = append(t.writes, pendingWrite{table: tb, row: r, data: update(data.Clone())})
		matched = append(matched, key)
		count++
	}
	if e.recorder != nil {
		e.recorder.predUpdate(t, tableName, attrSet(predAttrs), attrSet(readAttrs), attrSet(writeAttrs), matched)
	}
	return count, nil
}

// DeleteWhere atomically deletes every visible row matching pred.
func (t *Txn) DeleteWhere(tableName string, predAttrs []string, pred func(Value) bool) (int, error) {
	e := t.engine
	e.mu.Lock()
	defer e.maybeYield() // runs after the unlock below (LIFO)
	defer e.mu.Unlock()
	if t.done {
		return 0, ErrTxnDone
	}
	tb, err := t.tableOf(tableName)
	if err != nil {
		return 0, err
	}
	snap := t.statementSnap()
	count := 0
	var matched []string
	for _, key := range tb.sortedKeys() {
		r := tb.rows[key]
		data, ok := t.readRow(r, snap)
		if !ok || !pred(data) {
			continue
		}
		if err := t.lockWrite(r); err != nil {
			return count, err
		}
		t.writes = append(t.writes, pendingWrite{table: tb, row: r, delete: true})
		matched = append(matched, key)
		count++
	}
	if e.recorder != nil {
		e.recorder.predDelete(t, tableName, attrSet(predAttrs), tb.rel.Attrs, matched)
	}
	return count, nil
}

// project returns a copy of v restricted to attrs (all attributes when
// attrs is empty).
func project(v Value, attrs []string) Value {
	if len(attrs) == 0 {
		return v.Clone()
	}
	out := make(Value, len(attrs))
	for _, a := range attrs {
		if x, ok := v[a]; ok {
			out[a] = x
		}
	}
	return out
}

func attrSet(attrs []string) relschema.AttrSet {
	return relschema.NewAttrSet(attrs...)
}
