package mvcc

import (
	"errors"
	"testing"

	"repro/internal/relschema"
)

func predSchema() *relschema.Schema {
	s := relschema.NewSchema()
	s.MustAddRelation("Acct", []string{"id", "bal"}, []string{"id"})
	return s
}

func loadAccts(e *Engine, n int) {
	for i := 0; i < n; i++ {
		key := string(rune('a' + i))
		e.MustLoad("Acct", key, Value{"id": key, "bal": 10 * (i + 1)})
	}
}

func TestUpdateWhere(t *testing.T) {
	e := NewEngine(predSchema())
	loadAccts(e, 3) // balances 10, 20, 30

	txn := e.Begin(ReadCommitted)
	n, err := txn.UpdateWhere("Acct", []string{"bal"}, nil, []string{"bal"},
		func(v Value) bool { return v["bal"].(int) >= 20 },
		func(v Value) Value {
			v["bal"] = 0
			return v
		})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("updated %d rows, want 2", n)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		key  string
		want int
	}{{"a", 10}, {"b", 0}, {"c", 0}} {
		v, ok := e.ReadCommittedValue("Acct", tc.key)
		if !ok || v["bal"].(int) != tc.want {
			t.Errorf("%s: bal = %v, want %d", tc.key, v["bal"], tc.want)
		}
	}
}

func TestDeleteWhere(t *testing.T) {
	e := NewEngine(predSchema())
	loadAccts(e, 3)

	txn := e.Begin(ReadCommitted)
	n, err := txn.DeleteWhere("Acct", []string{"bal"}, func(v Value) bool {
		return v["bal"].(int) < 25
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("deleted %d rows, want 2", n)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := e.RowCount("Acct"); got != 1 {
		t.Fatalf("RowCount = %d, want 1", got)
	}
}

func TestPredicateWriteConflictAborts(t *testing.T) {
	e := NewEngine(predSchema())
	loadAccts(e, 2)

	t1 := e.Begin(ReadCommitted)
	if err := t1.UpdateKey("Acct", "a", nil, []string{"bal"}, func(v Value) Value {
		v["bal"] = -1
		return v
	}); err != nil {
		t.Fatal(err)
	}
	t2 := e.Begin(ReadCommitted)
	_, err := t2.UpdateWhere("Acct", nil, nil, []string{"bal"},
		func(Value) bool { return true },
		func(v Value) Value { return v })
	if !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("predicate update over a locked row should conflict, got %v", err)
	}
	t2.Abort()
	t1.Abort()
}

func TestDoneTransactionRejectsEverything(t *testing.T) {
	e := NewEngine(predSchema())
	loadAccts(e, 1)
	txn := e.Begin(ReadCommitted)
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.ReadKey("Acct", "a", "bal"); !errors.Is(err, ErrTxnDone) {
		t.Error("read on finished txn")
	}
	if err := txn.UpdateKey("Acct", "a", nil, nil, func(v Value) Value { return v }); !errors.Is(err, ErrTxnDone) {
		t.Error("update on finished txn")
	}
	if err := txn.Insert("Acct", "z", Value{}); !errors.Is(err, ErrTxnDone) {
		t.Error("insert on finished txn")
	}
	if err := txn.DeleteKey("Acct", "a"); !errors.Is(err, ErrTxnDone) {
		t.Error("delete on finished txn")
	}
	if _, err := txn.SelectWhere("Acct", nil, nil, func(Value) bool { return true }); !errors.Is(err, ErrTxnDone) {
		t.Error("select on finished txn")
	}
	if err := txn.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Error("double commit")
	}
	txn.Abort() // no-op, must not panic
}

func TestStatsAndRowCount(t *testing.T) {
	e := NewEngine(predSchema())
	loadAccts(e, 2)
	t1 := e.Begin(ReadCommitted)
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	t2 := e.Begin(ReadCommitted)
	t2.Abort()
	commits, aborts := e.Stats()
	if commits != 1 || aborts != 1 {
		t.Fatalf("stats = %d, %d", commits, aborts)
	}
	if e.RowCount("Acct") != 2 {
		t.Fatal("RowCount")
	}
	if e.RowCount("Nope") != 0 {
		t.Fatal("RowCount on unknown table")
	}
	if _, ok := e.ReadCommittedValue("Nope", "a"); ok {
		t.Fatal("value from unknown table")
	}
	if _, ok := e.ReadCommittedValue("Acct", "zz"); ok {
		t.Fatal("value for unknown key")
	}
}

func TestUnknownTableErrors(t *testing.T) {
	e := NewEngine(predSchema())
	txn := e.Begin(ReadCommitted)
	if _, err := txn.ReadKey("Nope", "a"); err == nil {
		t.Error("read unknown table")
	}
	if err := txn.Insert("Nope", "a", Value{}); err == nil {
		t.Error("insert unknown table")
	}
	if _, err := txn.SelectWhere("Nope", nil, nil, func(Value) bool { return true }); err == nil {
		t.Error("select unknown table")
	}
	txn.Abort()
	if err := e.Load("Nope", "a", Value{}); err == nil {
		t.Error("load unknown table")
	}
	if err := e.Load("Acct", "a", Value{}); err != nil {
		t.Error(err)
	}
	if err := e.Load("Acct", "a", Value{}); err == nil {
		t.Error("duplicate load accepted")
	}
}

// TestSIPredicateReadsAtSnapshot: under SI a predicate read evaluates over
// the transaction-start snapshot even after concurrent commits.
func TestSIPredicateReadsAtSnapshot(t *testing.T) {
	e := NewEngine(predSchema())
	loadAccts(e, 2) // a=10, b=20

	reader := e.Begin(SnapshotIsolation)
	// Concurrent committed update raises b to 100.
	w := e.Begin(ReadCommitted)
	if err := w.UpdateKey("Acct", "b", nil, []string{"bal"}, func(v Value) Value {
		v["bal"] = 100
		return v
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	rows, err := reader.SelectWhere("Acct", []string{"bal"}, []string{"id", "bal"},
		func(v Value) bool { return v["bal"].(int) >= 50 })
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("SI predicate read saw post-snapshot data: %v", rows)
	}
	// An RC reader sees it immediately.
	rc := e.Begin(ReadCommitted)
	rows, err = rc.SelectWhere("Acct", []string{"bal"}, []string{"id"},
		func(v Value) bool { return v["bal"].(int) >= 50 })
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("RC predicate read missed committed data: %v", rows)
	}
	rc.Abort()
	if err := reader.Commit(); err != nil {
		t.Fatal(err)
	}
}
