// Package mvcc is an in-memory multiversion storage engine used as the
// execution substrate for the paper's workloads. It implements exactly the
// semantics the paper assumes of the DBMS (Section 5.4):
//
//   - every SQL statement executes atomically over a snapshot taken when
//     the statement starts (per-statement snapshots under Read Committed,
//     per-transaction snapshots under Snapshot Isolation);
//   - reads observe the most recently committed version (read last
//     committed);
//   - writes take row locks held until commit, so dirty writes are
//     impossible (conflicting concurrent writers abort, modelling no-wait
//     lock acquisition);
//   - inserts create the first visible version of a row and deletes create
//     its dead version.
//
// An Engine can record every executed operation as a multiversion schedule
// (internal/schedule), which internal/seg then analyzes for conflict
// serializability — this is how the repository demonstrates that workloads
// certified robust really do produce only serializable executions, and
// that rejected workloads produce observable anomalies.
package mvcc

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/relschema"
)

// Isolation selects the engine's concurrency-control mode per transaction.
type Isolation int

// Isolation levels.
const (
	// ReadCommitted is multiversion read committed (mvrc): each statement
	// reads the latest committed data as of its own start.
	ReadCommitted Isolation = iota
	// SnapshotIsolation reads as of transaction start and aborts a writer
	// whose row was modified by a transaction that committed after that
	// snapshot (first-committer-wins).
	SnapshotIsolation
	// Serializable executes transactions under strong strict two-phase
	// row locking with no-wait conflict handling (aborts instead of
	// blocking), guaranteeing conflict-serializable executions.
	Serializable
)

// String renders the isolation level.
func (i Isolation) String() string {
	switch i {
	case ReadCommitted:
		return "read committed"
	case SnapshotIsolation:
		return "snapshot isolation"
	case Serializable:
		return "serializable"
	default:
		return fmt.Sprintf("Isolation(%d)", int(i))
	}
}

// Errors reported by transaction operations.
var (
	// ErrWriteConflict is returned when a write-write conflict with a
	// concurrent transaction forces an abort.
	ErrWriteConflict = errors.New("mvcc: write conflict")
	// ErrNotFound is returned by key operations on absent rows.
	ErrNotFound = errors.New("mvcc: row not found")
	// ErrDuplicateKey is returned by inserts on existing rows.
	ErrDuplicateKey = errors.New("mvcc: duplicate key")
	// ErrTxnDone is returned when operating on a finished transaction.
	ErrTxnDone = errors.New("mvcc: transaction already finished")
	// ErrReadConflict is returned under Serializable when a read lock
	// cannot be acquired.
	ErrReadConflict = errors.New("mvcc: read conflict")
)

// Value is a row value: attribute name to value.
type Value map[string]any

// Clone copies the value.
func (v Value) Clone() Value {
	out := make(Value, len(v))
	for k, x := range v {
		out[k] = x
	}
	return out
}

// version is one committed version of a row.
type version struct {
	seq     int64 // commit sequence that installed it
	data    Value // nil when deleted
	deleted bool
}

// row holds a row's committed version chain and its current writer lock.
type row struct {
	key      string
	versions []version // ascending seq
	// writer holds the transaction currently owning the row's write lock.
	writer *Txn
	// readers holds transactions owning read locks (Serializable only).
	readers map[*Txn]bool
}

// visible returns the latest version with seq <= snap, or nil.
func (r *row) visible(snap int64) *version {
	for i := len(r.versions) - 1; i >= 0; i-- {
		if r.versions[i].seq <= snap {
			return &r.versions[i]
		}
	}
	return nil
}

// latest returns the newest committed version, or nil.
func (r *row) latest() *version {
	if len(r.versions) == 0 {
		return nil
	}
	return &r.versions[len(r.versions)-1]
}

// table is one relation's storage.
type table struct {
	rel  *relschema.Relation
	rows map[string]*row
}

// Engine is the storage engine.
type Engine struct {
	mu     sync.Mutex
	schema *relschema.Schema
	tables map[string]*table
	// commitSeq is the last committed sequence number; sequence 0 holds
	// the initial database state.
	commitSeq int64
	nextTxnID int
	recorder  *Recorder
	// yield, when set, is invoked after every statement (outside the
	// engine mutex). Workload drivers install runtime.Gosched or a small
	// random sleep here so that concurrent transactions actually
	// interleave between statements instead of running back to back.
	yield func()

	// Stats.
	commits int64
	aborts  int64
}

// NewEngine creates an engine for the given schema with empty tables.
func NewEngine(schema *relschema.Schema) *Engine {
	e := &Engine{schema: schema, tables: map[string]*table{}}
	for _, r := range schema.Relations() {
		e.tables[r.Name] = &table{rel: r, rows: map[string]*row{}}
	}
	return e
}

// Schema returns the engine's schema.
func (e *Engine) Schema() *relschema.Schema { return e.schema }

// SetRecorder installs a schedule recorder (nil disables recording).
func (e *Engine) SetRecorder(r *Recorder) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.recorder = r
}

// SetYield installs a function invoked after every statement, outside the
// engine mutex. Install runtime.Gosched (or a short sleep) to encourage
// statement-level interleaving in workload experiments. Must be set before
// transactions run; it is read without synchronization afterwards.
func (e *Engine) SetYield(f func()) { e.yield = f }

// maybeYield invokes the configured yield hook, if any.
func (e *Engine) maybeYield() {
	if e.yield != nil {
		e.yield()
	}
}

// Stats returns the numbers of committed and aborted transactions.
func (e *Engine) Stats() (commits, aborts int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.commits, e.aborts
}

// Load installs a row as part of the initial database state (sequence 0).
// It must be called before any transactions run.
func (e *Engine) Load(tableName, key string, v Value) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tables[tableName]
	if !ok {
		return fmt.Errorf("mvcc: unknown table %q", tableName)
	}
	if _, dup := t.rows[key]; dup {
		return fmt.Errorf("mvcc: %w: %s/%s", ErrDuplicateKey, tableName, key)
	}
	t.rows[key] = &row{key: key, versions: []version{{seq: 0, data: v.Clone()}}}
	return nil
}

// MustLoad is Load but panics on error; for test fixtures.
func (e *Engine) MustLoad(tableName, key string, v Value) {
	if err := e.Load(tableName, key, v); err != nil {
		panic(err)
	}
}

// Begin starts a transaction at the given isolation level.
func (e *Engine) Begin(iso Isolation) *Txn {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.nextTxnID++
	t := &Txn{
		engine: e,
		id:     e.nextTxnID,
		iso:    iso,
		snap:   e.commitSeq,
	}
	if e.recorder != nil {
		e.recorder.begin(t)
	}
	return t
}

// RowCount returns the number of live (visible at the latest snapshot)
// rows of a table.
func (e *Engine) RowCount(tableName string) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	t := e.tables[tableName]
	if t == nil {
		return 0
	}
	n := 0
	for _, r := range t.rows {
		if v := r.visible(e.commitSeq); v != nil && !v.deleted {
			n++
		}
	}
	return n
}

// ReadCommittedValue returns the latest committed value of a row outside
// any transaction (for assertions in tests and examples).
func (e *Engine) ReadCommittedValue(tableName, key string) (Value, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t := e.tables[tableName]
	if t == nil {
		return nil, false
	}
	r := t.rows[key]
	if r == nil {
		return nil, false
	}
	v := r.visible(e.commitSeq)
	if v == nil || v.deleted {
		return nil, false
	}
	return v.data.Clone(), true
}

// sortedKeys returns table keys in deterministic order.
func (t *table) sortedKeys() []string {
	keys := make([]string, 0, len(t.rows))
	for k := range t.rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
