package mvcc

import (
	"fmt"
	"sync"

	"repro/internal/relschema"
	"repro/internal/schedule"
)

// Recorder captures every statement executed by an engine as a multiversion
// schedule over the formalism of internal/schedule. Aborted transactions
// are discarded (the formalism has no aborts; the paper assumes a recovery
// mechanism rolls back transactions that interfered with aborted ones).
//
// The recorder observes statements in the engine's serialization order (the
// engine mutex is held while recording), so the captured total order is a
// faithful linearization of the execution, and each multi-operation
// statement is contiguous — exactly the atomic-chunk assumption of
// Section 5.4.
type Recorder struct {
	mu sync.Mutex
	// events is the global statement log.
	events []event
	// txns maps engine transactions to recording state.
	txns map[*Txn]*txnRecord
}

type eventKind int

const (
	evRead eventKind = iota
	evUpdate
	evInsert
	evDelete
	evPredSelect
	evPredUpdate
	evPredDelete
	evCommit
)

// event is one recorded statement. For key statements Keys has one element;
// for predicate statements it lists every matching row in scan order.
type event struct {
	txn    *Txn
	kind   eventKind
	rel    string
	keys   []string
	attrs  relschema.AttrSet // read attributes (predicate attrs for pred events' PR op)
	rattrs relschema.AttrSet // read attributes of update-style statements
	wattrs relschema.AttrSet // write attributes
}

type txnRecord struct {
	label     string
	committed bool
	aborted   bool
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{txns: map[*Txn]*txnRecord{}}
}

func (r *Recorder) begin(t *Txn) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.txns[t] = &txnRecord{}
}

func (r *Recorder) commit(t *Txn) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, event{txn: t, kind: evCommit})
	if tr := r.txns[t]; tr != nil {
		tr.committed = true
		tr.label = t.label
	}
}

func (r *Recorder) abort(t *Txn) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if tr := r.txns[t]; tr != nil {
		tr.aborted = true
	}
}

func (r *Recorder) append(e event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, e)
}

func (r *Recorder) read(t *Txn, rel, key string, attrs relschema.AttrSet) {
	r.append(event{txn: t, kind: evRead, rel: rel, keys: []string{key}, attrs: attrs})
}

func (r *Recorder) update(t *Txn, rel, key string, rattrs, wattrs relschema.AttrSet) {
	r.append(event{txn: t, kind: evUpdate, rel: rel, keys: []string{key}, rattrs: rattrs, wattrs: wattrs})
}

func (r *Recorder) insert(t *Txn, rel, key string, attrs relschema.AttrSet) {
	r.append(event{txn: t, kind: evInsert, rel: rel, keys: []string{key}, wattrs: attrs})
}

func (r *Recorder) delete(t *Txn, rel, key string, attrs relschema.AttrSet) {
	r.append(event{txn: t, kind: evDelete, rel: rel, keys: []string{key}, wattrs: attrs})
}

func (r *Recorder) predSelect(t *Txn, rel string, predAttrs, readAttrs relschema.AttrSet, keys []string) {
	r.append(event{txn: t, kind: evPredSelect, rel: rel, attrs: predAttrs, rattrs: readAttrs, keys: keys})
}

func (r *Recorder) predUpdate(t *Txn, rel string, predAttrs, readAttrs, writeAttrs relschema.AttrSet, keys []string) {
	r.append(event{txn: t, kind: evPredUpdate, rel: rel, attrs: predAttrs, rattrs: readAttrs, wattrs: writeAttrs, keys: keys})
}

func (r *Recorder) predDelete(t *Txn, rel string, predAttrs, allAttrs relschema.AttrSet, keys []string) {
	r.append(event{txn: t, kind: evPredDelete, rel: rel, attrs: predAttrs, wattrs: allAttrs, keys: keys})
}

// Schedule converts the recorded log into a multiversion schedule over the
// committed transactions, ready for serialization-graph analysis.
func (r *Recorder) Schedule(schema *relschema.Schema) (*schedule.Schedule, error) {
	r.mu.Lock()
	defer r.mu.Unlock()

	committed := map[*Txn]bool{}
	for t, tr := range r.txns {
		if tr.committed {
			committed[t] = true
		}
	}
	txnOf := map[*Txn]*schedule.Transaction{}
	var txns []*schedule.Transaction
	id := 0
	get := func(t *Txn) *schedule.Transaction {
		if st, ok := txnOf[t]; ok {
			return st
		}
		id++
		st := schedule.NewTransaction(id)
		st.Label = r.txns[t].label
		if st.Label == "" {
			st.Label = t.label
		}
		txnOf[t] = st
		txns = append(txns, st)
		return st
	}
	var order []*schedule.Op
	emit := func(op *schedule.Op) { order = append(order, op) }
	for _, e := range r.events {
		if !committed[e.txn] {
			continue
		}
		st := get(e.txn)
		start := len(st.Ops)
		switch e.kind {
		case evRead:
			emit(st.ReadSet(schedule.Tuple(e.rel, e.keys[0]), e.attrs))
		case evUpdate:
			// A key update is a read-write chunk; the read half is
			// materialized only when it observes attributes (compare T2 in
			// Figure 3).
			if e.rattrs.Len() > 0 {
				emit(st.ReadSet(schedule.Tuple(e.rel, e.keys[0]), e.rattrs))
			}
			emit(st.WriteSet(schedule.Tuple(e.rel, e.keys[0]), e.wattrs))
			if len(st.Ops)-start > 1 {
				st.AddChunk(start, len(st.Ops)-1)
			}
		case evInsert:
			emit(st.Insert(schedule.Tuple(e.rel, e.keys[0]), e.wattrs))
		case evDelete:
			emit(st.Delete(schedule.Tuple(e.rel, e.keys[0]), e.wattrs))
		case evPredSelect:
			emit(st.PredReadSet(e.rel, e.attrs))
			for _, k := range e.keys {
				emit(st.ReadSet(schedule.Tuple(e.rel, k), e.rattrs))
			}
			st.AddChunk(start, len(st.Ops)-1)
		case evPredUpdate:
			emit(st.PredReadSet(e.rel, e.attrs))
			for _, k := range e.keys {
				if e.rattrs.Len() > 0 {
					emit(st.ReadSet(schedule.Tuple(e.rel, k), e.rattrs))
				}
				emit(st.WriteSet(schedule.Tuple(e.rel, k), e.wattrs))
			}
			st.AddChunk(start, len(st.Ops)-1)
		case evPredDelete:
			emit(st.PredReadSet(e.rel, e.attrs))
			for _, k := range e.keys {
				emit(st.Delete(schedule.Tuple(e.rel, k), e.wattrs))
			}
			st.AddChunk(start, len(st.Ops)-1)
		case evCommit:
			emit(st.Commit())
		default:
			return nil, fmt.Errorf("mvcc: unknown event kind %d", e.kind)
		}
	}
	for _, st := range txns {
		if st.CommitOp() == nil {
			return nil, fmt.Errorf("mvcc: recorded transaction %d has no commit", st.ID)
		}
	}
	return schedule.FromOrder(schema, txns, order)
}
