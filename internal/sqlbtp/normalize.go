package sqlbtp

import (
	"fmt"

	"repro/internal/btp"
	"repro/internal/relschema"
	"repro/internal/sqlbtp/dialect"
	"repro/internal/sqlbtp/ir"
)

// buildSchema turns the DDL tables of a script into a relational schema:
// all relations first (so FOREIGN KEY clauses may reference tables declared
// later), then the foreign keys in declaration order. Unnamed constraints
// are auto-named fk1, fk2, ...
func buildSchema(dialectName string, tables []*ir.Table) (*relschema.Schema, error) {
	s := relschema.NewSchema()
	byName := make(map[string]*ir.Table, len(tables))
	for _, t := range tables {
		if len(t.Key) == 0 {
			return nil, posErr(dialectName, "", t.Pos, "table %s has no primary key", t.Name)
		}
		if err := s.AddRelation(t.Name, t.Cols, t.Key); err != nil {
			return nil, posErr(dialectName, "", t.Pos, "%s", err.Error())
		}
		byName[t.Name] = t
	}
	unnamed := 0
	for _, t := range tables {
		for _, fk := range t.FKs {
			name := fk.Name
			if name == "" {
				unnamed++
				name = fmt.Sprintf("fk%d", unnamed)
			}
			refCols := fk.RefCols
			if len(refCols) == 0 {
				ref := byName[fk.RefTable]
				if ref == nil {
					return nil, posErr(dialectName, "", fk.Pos, "foreign key %s references unknown table %q", name, fk.RefTable)
				}
				refCols = ref.Key
			}
			if err := s.AddForeignKey(name, t.Name, fk.Cols, fk.RefTable, refCols); err != nil {
				return nil, posErr(dialectName, "", fk.Pos, "%s", err.Error())
			}
		}
	}
	return s, nil
}

func posErr(dialectName, program string, pos ir.Pos, format string, args ...any) error {
	return &dialect.Error{
		Dialect: dialectName,
		Program: program,
		Line:    pos.Line,
		Col:     pos.Col,
		Msg:     fmt.Sprintf(format, args...),
	}
}

// loweredStmt pairs one IR statement with its BTP translation; inference
// works on the pair (IR for placeholder dataflow, BTP for key-basedness).
type loweredStmt struct {
	ir *ir.Stmt
	b  *btp.Stmt
}

// normalizer lowers the programs of one compilation unit.
type normalizer struct {
	dialect string
	program string
	schema  *relschema.Schema
	// tables indexes the DDL by relation name on the inference path; nil
	// when the schema was supplied prebuilt.
	tables  map[string]*ir.Table
	lowered []loweredStmt
}

// lowerPrograms translates every IR program against the schema. When
// inferTables is non-nil (the DDL path), programs without explicit "-- @fk"
// pragmas get their FK annotations inferred from the REFERENCES clauses and
// the placeholder dataflow between statements.
func lowerPrograms(dialectName string, schema *relschema.Schema, programs []*ir.Program, inferTables []*ir.Table) ([]*btp.Program, error) {
	var tables map[string]*ir.Table
	if inferTables != nil {
		tables = make(map[string]*ir.Table, len(inferTables))
		for _, t := range inferTables {
			tables[t.Name] = t
		}
	}
	out := make([]*btp.Program, 0, len(programs))
	for _, p := range programs {
		n := &normalizer{dialect: dialectName, program: p.Name, schema: schema, tables: tables}
		prog, err := n.lowerProgram(p, tables != nil)
		if err != nil {
			return nil, err
		}
		out = append(out, prog)
	}
	return out, nil
}

func (n *normalizer) lowerProgram(p *ir.Program, infer bool) (*btp.Program, error) {
	body, err := n.lowerNode(p.Body)
	if err != nil {
		return nil, err
	}
	prog := &btp.Program{Name: p.Name, Abbrev: p.Abbrev, Body: body}
	if len(p.FKs) > 0 {
		// Explicit pragmas override and disable inference.
		for _, pr := range p.FKs {
			if pr.Dst == "" {
				return nil, posErr(n.dialect, n.program, pr.Pos, "malformed @fk pragma (want \"@fk qj = f(qi)\")")
			}
			if err := prog.AnnotateFK(n.schema, pr.FK, pr.Src, pr.Dst); err != nil {
				return nil, posErr(n.dialect, n.program, pr.Pos, "%s", err.Error())
			}
		}
	} else if infer {
		for _, a := range n.inferFKs() {
			if err := prog.AnnotateFK(n.schema, a.fk, a.src, a.dst); err != nil {
				return nil, fmt.Errorf("sqlbtp: program %s: inferred annotation %s = %s(%s): %w", p.Name, a.dst, a.fk, a.src, err)
			}
		}
	}
	if err := prog.Validate(n.schema); err != nil {
		return nil, err
	}
	return prog, nil
}

func (n *normalizer) lowerNode(node ir.Node) (btp.Node, error) {
	switch v := node.(type) {
	case *ir.Seq:
		items := make([]btp.Node, 0, len(v.Items))
		for _, it := range v.Items {
			b, err := n.lowerNode(it)
			if err != nil {
				return nil, err
			}
			items = append(items, b)
		}
		return &btp.Seq{Items: items}, nil
	case *ir.Choice:
		a, err := n.lowerNode(v.A)
		if err != nil {
			return nil, err
		}
		b, err := n.lowerNode(v.B)
		if err != nil {
			return nil, err
		}
		return btp.ChoiceOf(a, b), nil
	case *ir.Optional:
		a, err := n.lowerNode(v.A)
		if err != nil {
			return nil, err
		}
		return btp.Opt(a), nil
	case *ir.Loop:
		body, err := n.lowerNode(v.Body)
		if err != nil {
			return nil, err
		}
		return btp.LoopOf(body), nil
	case *ir.StmtNode:
		st, err := n.lowerStmt(v.Stmt)
		if err != nil {
			return nil, err
		}
		n.lowered = append(n.lowered, loweredStmt{ir: v.Stmt, b: st})
		return btp.S(st), nil
	default:
		return nil, fmt.Errorf("sqlbtp: program %s: unknown IR node %T", n.program, node)
	}
}

// lowerStmt is the Appendix A translation of one statement.
func (n *normalizer) lowerStmt(s *ir.Stmt) (*btp.Stmt, error) {
	rel := n.schema.Relation(s.Rel)
	if rel == nil {
		return nil, posErr(n.dialect, n.program, s.Pos, "unknown relation %q", s.Rel)
	}
	var out *btp.Stmt
	switch s.Kind {
	case ir.Select:
		var readIdents []ir.Ident
		for _, e := range s.Items {
			readIdents = append(readIdents, e.Idents...)
		}
		var readAttrs []string
		if s.Star {
			readAttrs = rel.Attrs.Sorted()
		} else {
			var err error
			if readAttrs, err = n.attrNames(rel, readIdents); err != nil {
				return nil, err
			}
		}
		extra, err := n.attrNames(rel, append(append([]ir.Ident(nil), s.OrderBy...), s.Reads...))
		if err != nil {
			return nil, err
		}
		readAttrs = append(readAttrs, extra...)
		cond, err := n.foldCond(s.Where, rel)
		if err != nil {
			return nil, err
		}
		if cond.isKeyCondition(rel) {
			out = &btp.Stmt{Type: btp.KeySel, Rel: rel.Name, ReadSet: btp.Attrs(readAttrs...)}
		} else {
			out = &btp.Stmt{
				Type: btp.PredSel, Rel: rel.Name,
				ReadSet:  btp.Attrs(readAttrs...),
				PReadSet: btp.AttrsOf(cond.attrs),
			}
		}
	case ir.Update:
		var writeAttrs []string
		var readIdents []ir.Ident
		for _, sc := range s.Sets {
			if !rel.Attrs.Has(sc.Col.Name) {
				return nil, posErr(n.dialect, n.program, sc.Col.Pos, "relation %s has no attribute %q", rel.Name, sc.Col.Name)
			}
			writeAttrs = append(writeAttrs, sc.Col.Name)
			readIdents = append(readIdents, sc.Value.Idents...)
		}
		for _, e := range s.Returning {
			readIdents = append(readIdents, e.Idents...)
		}
		readIdents = append(readIdents, s.Reads...)
		readAttrs, err := n.attrNames(rel, readIdents)
		if err != nil {
			return nil, err
		}
		cond, err := n.foldCond(s.Where, rel)
		if err != nil {
			return nil, err
		}
		if cond.isKeyCondition(rel) {
			out = &btp.Stmt{
				Type: btp.KeyUpd, Rel: rel.Name,
				ReadSet:  btp.Attrs(readAttrs...),
				WriteSet: btp.Attrs(writeAttrs...),
			}
		} else {
			out = &btp.Stmt{
				Type: btp.PredUpd, Rel: rel.Name,
				ReadSet:  btp.Attrs(readAttrs...),
				WriteSet: btp.Attrs(writeAttrs...),
				PReadSet: btp.AttrsOf(cond.attrs),
			}
		}
	case ir.Insert:
		var cols []string
		for _, c := range s.Cols {
			if !rel.Attrs.Has(c.Name) {
				return nil, posErr(n.dialect, n.program, c.Pos, "relation %s has no attribute %q", rel.Name, c.Name)
			}
			cols = append(cols, c.Name)
		}
		// On the DDL path the VALUES arity must line up — positional binds
		// resolve against it. VALUES expressions themselves are free-form
		// (literals, function calls); their identifiers are not read.
		if n.tables != nil {
			want := len(cols)
			if want == 0 {
				want = rel.Attrs.Len()
			}
			if len(s.Values) != want {
				return nil, posErr(n.dialect, n.program, s.Pos, "INSERT into %s has %d values for %d columns", rel.Name, len(s.Values), want)
			}
		}
		ws := btp.AttrsOf(rel.Attrs.Clone())
		if len(cols) > 0 {
			ws = btp.Attrs(cols...)
		}
		out = &btp.Stmt{Type: btp.Ins, Rel: rel.Name, WriteSet: ws}
	case ir.Delete:
		cond, err := n.foldCond(s.Where, rel)
		if err != nil {
			return nil, err
		}
		ws := btp.AttrsOf(rel.Attrs.Clone())
		if cond.isKeyCondition(rel) {
			out = &btp.Stmt{Type: btp.KeyDel, Rel: rel.Name, WriteSet: ws}
		} else {
			out = &btp.Stmt{Type: btp.PredDel, Rel: rel.Name, WriteSet: ws, PReadSet: btp.AttrsOf(cond.attrs)}
		}
	default:
		return nil, fmt.Errorf("sqlbtp: program %s: unknown statement kind %v", n.program, s.Kind)
	}
	out.Name = s.Label
	return out, nil
}

// attrNames validates identifier uses against the relation and returns
// their names (duplicates preserved — the btp.Attrs constructor dedups).
func (n *normalizer) attrNames(rel *relschema.Relation, ids []ir.Ident) ([]string, error) {
	var out []string
	for _, id := range ids {
		if !rel.Attrs.Has(id.Name) {
			return nil, posErr(n.dialect, n.program, id.Pos, "relation %s has no attribute %q", rel.Name, id.Name)
		}
		out = append(out, id.Name)
	}
	return out, nil
}

// condInfo summarizes a WHERE clause for the key-based / predicate-based
// decision of Appendix A.
type condInfo struct {
	attrs         relschema.AttrSet
	eqAttrs       relschema.AttrSet
	conjunctiveEq bool
}

func (c condInfo) isKeyCondition(rel *relschema.Relation) bool {
	return c.conjunctiveEq && rel.Key.SubsetOf(c.eqAttrs)
}

// foldCond folds a condition tree with the Appendix A algebra: AND unions
// attributes and equality binds, OR keeps attributes but discards binds, a
// comparison binds an attribute when it equates exactly one attribute use
// with an attribute-free side.
func (n *normalizer) foldCond(c ir.Cond, rel *relschema.Relation) (condInfo, error) {
	if c == nil {
		// No WHERE clause: a full-relation predicate over no attributes.
		return condInfo{attrs: relschema.NewAttrSet()}, nil
	}
	switch v := c.(type) {
	case *ir.CondAnd:
		acc, err := n.foldCond(v.Terms[0], rel)
		if err != nil {
			return condInfo{}, err
		}
		for _, t := range v.Terms[1:] {
			right, err := n.foldCond(t, rel)
			if err != nil {
				return condInfo{}, err
			}
			acc = condInfo{
				attrs:         acc.attrs.Union(right.attrs),
				eqAttrs:       acc.eqAttrs.Union(right.eqAttrs),
				conjunctiveEq: acc.conjunctiveEq && right.conjunctiveEq,
			}
		}
		return acc, nil
	case *ir.CondOr:
		acc, err := n.foldCond(v.Terms[0], rel)
		if err != nil {
			return condInfo{}, err
		}
		for _, t := range v.Terms[1:] {
			right, err := n.foldCond(t, rel)
			if err != nil {
				return condInfo{}, err
			}
			acc = condInfo{attrs: acc.attrs.Union(right.attrs)}
		}
		return acc, nil
	case *ir.CondCmp:
		leftAttrs, err := n.resolveOperand(v.Left, rel)
		if err != nil {
			return condInfo{}, err
		}
		rightAttrs, err := n.resolveOperand(v.Right, rel)
		if err != nil {
			return condInfo{}, err
		}
		info := condInfo{attrs: relschema.NewAttrSet(append(append([]string(nil), leftAttrs...), rightAttrs...)...)}
		if v.Op == "=" {
			switch {
			case len(leftAttrs) == 1 && len(rightAttrs) == 0:
				info.eqAttrs = relschema.NewAttrSet(leftAttrs[0])
				info.conjunctiveEq = true
			case len(rightAttrs) == 1 && len(leftAttrs) == 0:
				info.eqAttrs = relschema.NewAttrSet(rightAttrs[0])
				info.conjunctiveEq = true
			}
		}
		return info, nil
	default:
		return condInfo{}, fmt.Errorf("sqlbtp: program %s: unknown condition node %T", n.program, c)
	}
}

// resolveOperand resolves one comparison side's identifier uses: top-level
// uses must be attributes of the relation; uses inside function-call
// arguments are filtered to attributes. Duplicate uses count twice — an
// operand using the same attribute twice is not a bind.
func (n *normalizer) resolveOperand(op ir.CondOperand, rel *relschema.Relation) ([]string, error) {
	var out []string
	for _, u := range op.Uses {
		if u.InCall {
			if rel.Attrs.Has(u.Name) {
				out = append(out, u.Name)
			}
			continue
		}
		if !rel.Attrs.Has(u.Name) {
			return nil, posErr(n.dialect, n.program, u.Pos, "%q is not an attribute of %s", u.Name, rel.Name)
		}
		out = append(out, u.Name)
	}
	return out, nil
}
