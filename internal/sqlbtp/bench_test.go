package sqlbtp

import (
	"testing"
)

// BenchmarkSQLCompile measures the full front-door pipeline — lex, parse,
// schema build, normalization and FK inference — on the TPC-C corpus, per
// dialect. TPC-C is the largest corpus entry (9 tables, 12 foreign keys,
// 5 programs, 29 statements), so this is the compile-cost ceiling a
// :fromSQL request pays before registration.
func BenchmarkSQLCompile(b *testing.B) {
	for _, dialect := range goldenDialects {
		src := goldenSource(b, dialect, "tpcc")
		b.Run(dialect, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Compile(src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
