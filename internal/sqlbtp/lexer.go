// Package sqlbtp translates transaction programs written in the SQL
// fragment of Appendix A into basic transaction programs (internal/btp).
// It contains a hand-written lexer and recursive-descent parser for:
//
//	PROGRAM <name>:
//	  SELECT <cols> FROM <rel> WHERE <cond>;
//	  UPDATE <rel> SET a = <expr>, ... WHERE <cond> [RETURNING <cols>];
//	  INSERT INTO <rel> [(cols)] VALUES (<exprs>);
//	  DELETE FROM <rel> WHERE <cond>;
//	  IF [<cond>] THEN ... [ELSE ...] ENDIF;
//	  REPEAT ... END REPEAT;
//	  COMMIT;
//
// Statements may carry the paper's labels as trailing comments ("-- q1");
// unlabeled statements are numbered q1, q2, ... in order. Foreign-key
// annotations use pragma comments: "-- @fk q3 = f1(q4)".
//
// A WHERE clause that is a conjunction of equality comparisons binding
// exactly the primary-key attributes of the relation makes the statement
// key-based; any other clause makes it predicate-based with PReadSet equal
// to the attributes the condition mentions (Appendix A).
package sqlbtp

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates lexer token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokParam  // :name
	tokNumber // 123 or 4.5
	tokString // 'text'
	tokPunct  // ( ) , ; = < > <= >= <> + - * / .
	tokPragma // -- @fk ... (whole line, content without the marker)
	tokLabel  // -- qN statement label comment
)

type token struct {
	kind tokKind
	text string
	line int
}

// lexer tokenizes the SQL dialect. Plain comments are skipped; label
// comments ("-- q3") and pragma comments ("-- @fk ...") are preserved as
// tokens because the translator consumes them.
type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// Comment until end of line; may be a label or pragma.
			start := l.pos + 2
			end := start
			for end < len(l.src) && l.src[end] != '\n' {
				end++
			}
			body := strings.TrimSpace(l.src[start:end])
			l.pos = end
			if strings.HasPrefix(body, "@") {
				return token{kind: tokPragma, text: body, line: l.line}, nil
			}
			if isLabel(body) {
				return token{kind: tokLabel, text: body, line: l.line}, nil
			}
			// Plain comment: skip.
		default:
			return l.scanToken()
		}
	}
	return token{kind: tokEOF, line: l.line}, nil
}

// isLabel reports whether a comment body looks like a statement label such
// as "q12".
func isLabel(s string) bool {
	if len(s) < 2 || s[0] != 'q' {
		return false
	}
	for _, r := range s[1:] {
		if !unicode.IsDigit(r) {
			return false
		}
	}
	return true
}

func (l *lexer) scanToken() (token, error) {
	c := l.src[l.pos]
	line := l.line
	switch {
	case isIdentStart(rune(c)):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: line}, nil
	case c == ':':
		l.pos++
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		if l.pos == start {
			// A bare ':' (e.g. after a program header) is punctuation.
			return token{kind: tokPunct, text: ":", line: line}, nil
		}
		return token{kind: tokParam, text: l.src[start:l.pos], line: line}, nil
	case c >= '0' && c <= '9':
		start := l.pos
		for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], line: line}, nil
	case c == '\'':
		l.pos++
		start := l.pos
		for l.pos < len(l.src) && l.src[l.pos] != '\'' {
			if l.src[l.pos] == '\n' {
				return token{}, fmt.Errorf("sqlbtp: line %d: unterminated string literal", line)
			}
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, fmt.Errorf("sqlbtp: line %d: unterminated string literal", line)
		}
		text := l.src[start:l.pos]
		l.pos++ // closing quote
		return token{kind: tokString, text: text, line: line}, nil
	case strings.ContainsRune("(),;=+-*/.", rune(c)):
		l.pos++
		return token{kind: tokPunct, text: string(c), line: line}, nil
	case c == '<' || c == '>':
		start := l.pos
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '=' || (c == '<' && l.src[l.pos] == '>')) {
			l.pos++
		}
		return token{kind: tokPunct, text: l.src[start:l.pos], line: line}, nil
	case c == '!':
		start := l.pos
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokPunct, text: l.src[start:l.pos], line: line}, nil
		}
		return token{}, fmt.Errorf("sqlbtp: line %d: unexpected '!'", line)
	default:
		return token{}, fmt.Errorf("sqlbtp: line %d: unexpected character %q", line, c)
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
