package sqlbtp

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/benchmarks"
)

// TestParseNeverPanics feeds the parser random byte soup and random
// keyword/token shuffles; it must return errors, never panic.
func TestParseNeverPanics(t *testing.T) {
	schema := benchmarks.AuctionSchema()
	check := func(src string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on input %q: %v", src, r)
				ok = false
			}
		}()
		_, _ = Parse(schema, src)
		return true
	}
	if err := quick.Check(func(s string) bool { return check(s) }, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}

	// Structured fuzz: random sequences of plausible tokens.
	tokens := []string{
		"PROGRAM", "P", ":", "SELECT", "UPDATE", "DELETE", "INSERT", "INTO",
		"FROM", "WHERE", "SET", "VALUES", "RETURNING", "IF", "ELSE", "ENDIF",
		"THEN", "REPEAT", "END", "COMMIT", ";", ",", "(", ")", "=", "<", ">=",
		"AND", "OR", "bid", "buyerId", "Bids", "Buyer", "Log", ":p", "42",
		"'str'", "+", "-", "*", "--", "-- q1", "-- @fk q1 = f1(q2)",
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		n := 1 + rng.Intn(25)
		var b strings.Builder
		for j := 0; j < n; j++ {
			b.WriteString(tokens[rng.Intn(len(tokens))])
			if rng.Intn(4) == 0 {
				b.WriteString("\n")
			} else {
				b.WriteString(" ")
			}
		}
		if !check(b.String()) {
			t.Fatalf("panic on structured input %d", i)
		}
	}
}

// FuzzDialectParse feeds arbitrary scripts to Compile under every dialect
// front-end. Compile must return a value or an error, never panic, and the
// golden corpus seeds it with real multi-dialect input so mutation starts
// from deep program shapes rather than byte soup.
func FuzzDialectParse(f *testing.F) {
	dialects := []string{"embedded", "postgres", "mysql", "sqlite"}
	for _, d := range dialects[1:] {
		for _, bench := range goldenBenchmarks {
			src, err := os.ReadFile(filepath.Join("testdata", d, bench+".sql"))
			if err != nil {
				f.Fatal(err)
			}
			f.Add(d, string(src))
		}
	}
	f.Add("embedded", benchmarks.AuctionSQL)
	f.Add("nosuch", "SELECT 1;")
	f.Fuzz(func(t *testing.T, dialect, script string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic compiling dialect=%q script=%q: %v", dialect, script, r)
			}
		}()
		_, _ = Compile(Source{Dialect: dialect, Script: script})
	})
}

// TestLexerRoundTripStability: lexing valid sources twice yields identical
// token streams (the lexer is stateless over its input).
func TestLexerRoundTripStability(t *testing.T) {
	for _, src := range []string{benchmarks.AuctionSQL, benchmarks.SmallBankSQL, benchmarks.TPCCSQL} {
		a, err := lex(src)
		if err != nil {
			t.Fatal(err)
		}
		b, err := lex(src)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatal("token count differs between runs")
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("token %d differs: %v vs %v", i, a[i], b[i])
			}
		}
	}
}

// TestParseIdempotence: parsing the same benchmark source twice yields
// structurally identical programs (statement renderings match).
func TestParseIdempotence(t *testing.T) {
	schema := benchmarks.TPCCSchema()
	p1, err := Parse(schema, benchmarks.TPCCSQL)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Parse(schema, benchmarks.TPCCSQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1) != len(p2) {
		t.Fatal("program count differs")
	}
	for i := range p1 {
		s1, s2 := p1[i].Statements(), p2[i].Statements()
		if len(s1) != len(s2) {
			t.Fatalf("%s: statement count differs", p1[i].Name)
		}
		for j := range s1 {
			if s1[j].String() != s2[j].String() {
				t.Fatalf("%s: statement %d differs: %s vs %s", p1[i].Name, j, s1[j], s2[j])
			}
		}
	}
}
