package sqlbtp

import (
	"fmt"
	"strings"

	"repro/internal/btp"
	"repro/internal/relschema"
)

// parser consumes tokens and produces BTP programs.
type parser struct {
	schema *relschema.Schema
	toks   []token
	pos    int
	// nextLabel auto-numbers unlabeled statements per program.
	nextLabel int
	// pendingLabel is a label comment seen before or after a statement.
	pendingLabel string
	// usedLabels guards against duplicate labels.
	usedLabels map[string]bool
	// pragmas collects @fk pragmas of the current program.
	pragmas []fkPragma
	// attrParams records, per statement label, the attribute→parameter
	// equalities (for documentation and potential FK inference).
	attrParams map[string]map[string]string
}

type fkPragma struct {
	dst, fk, src string
	line         int
}

// Parse translates the source into BTP programs over the given schema.
func Parse(schema *relschema.Schema, src string) ([]*btp.Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{schema: schema, toks: toks}
	var programs []*btp.Program
	for !p.at(tokEOF) {
		prog, err := p.parseProgram()
		if err != nil {
			return nil, err
		}
		programs = append(programs, prog)
	}
	return programs, nil
}

// ParseProgram translates a single program.
func ParseProgram(schema *relschema.Schema, src string) (*btp.Program, error) {
	programs, err := Parse(schema, src)
	if err != nil {
		return nil, err
	}
	if len(programs) != 1 {
		return nil, fmt.Errorf("sqlbtp: expected exactly one program, found %d", len(programs))
	}
	return programs[0], nil
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) at(k tokKind) bool {
	p.skipDecorations(false)
	return p.cur().kind == k
}

// skipDecorations consumes label and pragma tokens, storing them. When
// capture is false, a label token is still remembered as pending (it may
// precede its statement).
func (p *parser) skipDecorations(capture bool) {
	for {
		t := p.toks[p.pos]
		switch t.kind {
		case tokLabel:
			p.pendingLabel = t.text
			p.pos++
		case tokPragma:
			p.recordPragma(t)
			p.pos++
		default:
			_ = capture
			return
		}
	}
}

func (p *parser) recordPragma(t token) {
	body := strings.TrimSpace(t.text)
	if !strings.HasPrefix(body, "@fk") {
		return // unknown pragmas are ignored
	}
	// Format: @fk qj = f(qi)
	rest := strings.TrimSpace(strings.TrimPrefix(body, "@fk"))
	eq := strings.Index(rest, "=")
	open := strings.Index(rest, "(")
	closeP := strings.Index(rest, ")")
	if eq < 0 || open < eq || closeP < open {
		p.pragmas = append(p.pragmas, fkPragma{line: t.line}) // malformed; reported later
		return
	}
	p.pragmas = append(p.pragmas, fkPragma{
		dst:  strings.TrimSpace(rest[:eq]),
		fk:   strings.TrimSpace(rest[eq+1 : open]),
		src:  strings.TrimSpace(rest[open+1 : closeP]),
		line: t.line,
	})
}

func (p *parser) atKeyword(kw string) bool {
	p.skipDecorations(false)
	t := p.cur()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.atKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		t := p.cur()
		return fmt.Errorf("sqlbtp: line %d: expected %q, found %q", t.line, kw, t.text)
	}
	return nil
}

func (p *parser) acceptPunct(s string) bool {
	p.skipDecorations(false)
	t := p.cur()
	if t.kind == tokPunct && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		t := p.cur()
		return fmt.Errorf("sqlbtp: line %d: expected %q, found %q", t.line, s, t.text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	p.skipDecorations(false)
	t := p.cur()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sqlbtp: line %d: expected identifier, found %q", t.line, t.text)
	}
	p.pos++
	return t.text, nil
}

// takeLabel returns the statement label: a pending "-- qN" comment, a label
// comment immediately following (before the next token is inspected the
// lexer already attached it), or an auto-generated one.
func (p *parser) takeLabel() (string, error) {
	label := p.pendingLabel
	p.pendingLabel = ""
	if label == "" {
		p.nextLabel++
		label = fmt.Sprintf("q%d", p.nextLabel)
		for p.usedLabels[label] {
			p.nextLabel++
			label = fmt.Sprintf("q%d", p.nextLabel)
		}
	}
	if p.usedLabels[label] {
		return "", fmt.Errorf("sqlbtp: duplicate statement label %q", label)
	}
	p.usedLabels[label] = true
	return label, nil
}

// parseProgram parses "PROGRAM <name>: <body> COMMIT;" (the COMMIT is
// optional and ends the body).
func (p *parser) parseProgram() (*btp.Program, error) {
	p.nextLabel = 0
	p.usedLabels = map[string]bool{}
	p.pragmas = nil
	p.attrParams = map[string]map[string]string{}
	if err := p.expectKeyword("PROGRAM"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	// Optional parameter list and colon: PROGRAM Name(:a, :b):
	if p.acceptPunct("(") {
		for !p.acceptPunct(")") {
			if p.at(tokEOF) {
				return nil, fmt.Errorf("sqlbtp: unterminated parameter list for program %s", name)
			}
			p.pos++ // parameters are documentation only
		}
	}
	_ = p.acceptPunct(":")
	body, err := p.parseBody(name, "")
	if err != nil {
		return nil, err
	}
	prog := &btp.Program{Name: name, Body: body}
	for _, pr := range p.pragmas {
		if pr.dst == "" {
			return nil, fmt.Errorf("sqlbtp: line %d: malformed @fk pragma (want \"@fk qj = f(qi)\")", pr.line)
		}
		if err := prog.AnnotateFK(p.schema, pr.fk, pr.src, pr.dst); err != nil {
			return nil, fmt.Errorf("sqlbtp: line %d: %w", pr.line, err)
		}
	}
	if err := prog.Validate(p.schema); err != nil {
		return nil, err
	}
	return prog, nil
}

// parseBody parses statements until COMMIT, ELSE, ENDIF, END or EOF.
// The terminating keyword is not consumed (except COMMIT, which is).
func (p *parser) parseBody(progName, _ string) (btp.Node, error) {
	var items []btp.Node
	for {
		p.skipDecorations(true)
		switch {
		case p.at(tokEOF), p.atKeyword("ELSE"), p.atKeyword("ENDIF"), p.atKeyword("END"):
			return seqOf(items), nil
		case p.acceptKeyword("COMMIT"):
			_ = p.acceptPunct(";")
			return seqOf(items), nil
		case p.atKeyword("PROGRAM"):
			return seqOf(items), nil
		case p.acceptKeyword("IF"):
			node, err := p.parseIf(progName)
			if err != nil {
				return nil, err
			}
			items = append(items, node)
		case p.acceptKeyword("REPEAT"):
			node, err := p.parseRepeat(progName)
			if err != nil {
				return nil, err
			}
			items = append(items, node)
		default:
			stmt, err := p.parseStatement(progName)
			if err != nil {
				return nil, err
			}
			items = append(items, btp.S(stmt))
		}
	}
}

func seqOf(items []btp.Node) btp.Node {
	if len(items) == 1 {
		return items[0]
	}
	return &btp.Seq{Items: items}
}

// parseIf parses IF [<cond>] [THEN] ... [ELSE ...] ENDIF [;]. The condition
// itself is irrelevant to the BTP abstraction and is skipped.
func (p *parser) parseIf(progName string) (btp.Node, error) {
	// Skip condition tokens until THEN or a statement keyword.
	p.skipCondition([]string{"THEN"})
	_ = p.acceptKeyword("THEN")
	_ = p.acceptPunct(";")
	thenBody, err := p.parseBody(progName, "")
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword("ELSE") {
		elseBody, err := p.parseBody(progName, "")
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ENDIF"); err != nil {
			return nil, err
		}
		_ = p.acceptPunct(";")
		return btp.ChoiceOf(thenBody, elseBody), nil
	}
	if err := p.expectKeyword("ENDIF"); err != nil {
		return nil, err
	}
	_ = p.acceptPunct(";")
	return btp.Opt(thenBody), nil
}

// parseRepeat parses REPEAT ... END REPEAT [;].
func (p *parser) parseRepeat(progName string) (btp.Node, error) {
	body, err := p.parseBody(progName, "")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("REPEAT"); err != nil {
		return nil, err
	}
	_ = p.acceptPunct(";")
	return btp.LoopOf(body), nil
}

// skipCondition advances over tokens until one of the stop keywords or a
// statement-starting keyword is reached.
func (p *parser) skipCondition(stops []string) {
	stmtStarts := []string{"SELECT", "UPDATE", "INSERT", "DELETE", "IF", "REPEAT", "COMMIT", "ELSE", "ENDIF", "END"}
	for {
		p.skipDecorations(false)
		t := p.cur()
		if t.kind == tokEOF {
			return
		}
		if t.kind == tokIdent {
			for _, s := range stops {
				if strings.EqualFold(t.text, s) {
					return
				}
			}
			for _, s := range stmtStarts {
				if strings.EqualFold(t.text, s) {
					return
				}
			}
		}
		p.pos++
	}
}
