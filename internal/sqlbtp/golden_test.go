package sqlbtp

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/btp"
	"repro/internal/snapshot"
)

// The golden corpus: every embedded benchmark rewritten in every SQL
// dialect. Each file must compile to a workload whose fingerprint is
// byte-identical to the hand-built benchmark's — same schema, same
// statement trees, same FK annotations.

var goldenDialects = []string{"postgres", "mysql", "sqlite"}

var goldenBenchmarks = []string{"smallbank", "auction", "tpcc"}

func goldenSource(t testing.TB, dialect, bench string) Source {
	t.Helper()
	path := filepath.Join("testdata", dialect, bench+".sql")
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read corpus file: %v", err)
	}
	return Source{Dialect: dialect, Script: string(src)}
}

// programDump renders a program in the same detail the fingerprint hashes,
// so a mismatch can be diffed by eye: body shape, every statement's sets,
// and the FK annotations (sorted, as the fingerprint treats them).
func programDump(p *btp.Program) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (%s): %s\n", p.Name, p.Abbrev, p.String())
	for _, q := range p.Statements() {
		fmt.Fprintf(&sb, "  %s\n", q.String())
	}
	fks := make([]string, 0, len(p.FKs))
	for _, fk := range p.FKs {
		fks = append(fks, fk.String())
	}
	sort.Strings(fks)
	for _, s := range fks {
		fmt.Fprintf(&sb, "  %s\n", s)
	}
	return sb.String()
}

func TestGoldenCorpusMatchesHandBuilt(t *testing.T) {
	for _, bench := range goldenBenchmarks {
		hand, err := benchmarks.ByName(bench, 1)
		if err != nil {
			t.Fatalf("ByName(%q): %v", bench, err)
		}
		want := snapshot.Fingerprint(hand.Schema, hand.Programs)
		for _, dialect := range goldenDialects {
			t.Run(bench+"/"+dialect, func(t *testing.T) {
				wl, err := Compile(goldenSource(t, dialect, bench))
				if err != nil {
					t.Fatalf("Compile: %v", err)
				}
				got := snapshot.Fingerprint(wl.Schema, wl.Programs)
				if got != want {
					t.Errorf("fingerprint mismatch: compiled %s, hand-built %s", got, want)
					if gs, ws := wl.Schema.String(), hand.Schema.String(); gs != ws {
						t.Errorf("schema differs:\n--- compiled\n%s\n--- hand-built\n%s", gs, ws)
					}
					for i, p := range wl.Programs {
						if i >= len(hand.Programs) {
							t.Errorf("extra compiled program %s", p.Name)
							continue
						}
						hp := hand.Programs[i]
						if gp, wp := programDump(p), programDump(hp); gp != wp {
							t.Errorf("program %s differs:\n--- compiled\n%s\n--- hand-built\n%s", p.Name, gp, wp)
						}
					}
					for i := len(wl.Programs); i < len(hand.Programs); i++ {
						t.Errorf("missing program %s", hand.Programs[i].Name)
					}
				}
			})
		}
	}
}

// TestGoldenCorpusCrossDialect pins the stronger property directly: for
// each benchmark, the three dialect renderings compile to the same
// fingerprint as one another (not just the same as the hand-built tree),
// so a drift in the hand-built benchmarks cannot mask a dialect split.
func TestGoldenCorpusCrossDialect(t *testing.T) {
	for _, bench := range goldenBenchmarks {
		prints := map[string]string{}
		for _, dialect := range goldenDialects {
			wl, err := Compile(goldenSource(t, dialect, bench))
			if err != nil {
				t.Fatalf("Compile %s/%s: %v", dialect, bench, err)
			}
			prints[dialect] = snapshot.Fingerprint(wl.Schema, wl.Programs)
		}
		for _, dialect := range goldenDialects[1:] {
			if prints[dialect] != prints["postgres"] {
				t.Errorf("%s: %s fingerprint %s != postgres fingerprint %s",
					bench, dialect, prints[dialect], prints["postgres"])
			}
		}
	}
}
