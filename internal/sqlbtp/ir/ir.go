// Package ir is the shared intermediate representation of the multi-dialect
// SQL front door: every dialect front-end (internal/sqlbtp/dialect/...)
// lowers its source text into the types of this package, and the normalizer
// in internal/sqlbtp turns an ir.Script into a relational schema plus basic
// transaction programs (internal/btp).
//
// The IR is deliberately schema-free: a front-end records which identifiers
// a statement mentions and where, but whether an identifier names an
// attribute of the statement's relation — and whether a WHERE clause covers
// a primary key — is resolved by the normalizer, which is the single place
// the Appendix A translation rules (key- vs predicate-based statements, FK
// inference from REFERENCES clauses) are implemented. Every node carries a
// source position so errors surface with line and column regardless of the
// dialect that produced the tree.
package ir

import "fmt"

// Pos is a 1-based source position.
type Pos struct {
	Line int
	Col  int
}

// String renders the position as "line L:C".
func (p Pos) String() string { return fmt.Sprintf("line %d:%d", p.Line, p.Col) }

// Script is one compilation unit: the tables declared by DDL (possibly
// none, when the caller supplies a prebuilt schema) and the transaction
// programs.
type Script struct {
	Tables   []*Table
	Programs []*Program
}

// Table is one CREATE TABLE declaration. Cols preserves declaration order —
// positional INSERT ... VALUES binds resolve against it — while Key lists
// the primary-key columns.
type Table struct {
	Name string
	Cols []string
	Key  []string
	FKs  []*ForeignKey
	Pos  Pos
}

// ForeignKey is one REFERENCES / FOREIGN KEY clause of a table. RefCols may
// be empty, meaning the referenced table's primary key. Name is the
// CONSTRAINT name when given; unnamed constraints are auto-named by the
// normalizer.
type ForeignKey struct {
	Name     string
	Cols     []string
	RefTable string
	RefCols  []string
	Pos      Pos
}

// Program is one transaction program: a body of control-flow nodes over
// statements, plus any explicit "-- @fk" annotations. A program that
// carries explicit FK pragmas opts out of FK inference.
type Program struct {
	Name   string
	Abbrev string
	Body   Node
	FKs    []FKPragma
	Pos    Pos
}

// FKPragma is one explicit "-- @fk qj = f(qi)" annotation.
type FKPragma struct {
	FK  string
	Src string
	Dst string
	Pos Pos
}

// Node is a control-flow node of a program body.
type Node interface{ node() }

// Seq is sequential composition.
type Seq struct{ Items []Node }

// Choice is an IF ... THEN ... ELSE ... branch.
type Choice struct{ A, B Node }

// Optional is an IF ... THEN ... branch without ELSE.
type Optional struct{ A Node }

// Loop is a REPEAT ... END REPEAT body.
type Loop struct{ Body Node }

// StmtNode wraps a single statement.
type StmtNode struct{ Stmt *Stmt }

func (*Seq) node()      {}
func (*Choice) node()   {}
func (*Optional) node() {}
func (*Loop) node()     {}
func (*StmtNode) node() {}

// StmtKind enumerates the statement forms of the SQL fragment.
type StmtKind int

const (
	Select StmtKind = iota
	Update
	Insert
	Delete
)

// String names the kind as its SQL keyword.
func (k StmtKind) String() string {
	switch k {
	case Select:
		return "SELECT"
	case Update:
		return "UPDATE"
	case Insert:
		return "INSERT"
	case Delete:
		return "DELETE"
	default:
		return fmt.Sprintf("StmtKind(%d)", int(k))
	}
}

// Stmt is one SQL statement in dialect-neutral form. Only the fields
// relevant to its Kind are populated.
type Stmt struct {
	Kind  StmtKind
	Label string // "-- qN" label; "" = auto-number
	Rel   string
	Pos   Pos

	// SELECT: the select list (Star for "*"), with optional INTO capture
	// targets positional to Items.
	Star  bool
	Items []Expr
	Into  []Param

	// UPDATE: SET clauses, optional RETURNING list with INTO targets.
	Sets      []SetClause
	Returning []Expr
	RetInto   []Param

	// SELECT / UPDATE / DELETE: the WHERE condition; nil means no WHERE
	// (a full-relation predicate). OrderBy lists ORDER BY column
	// references (they join the read set).
	Where   Cond
	OrderBy []Ident

	// INSERT: optional column list and the VALUES expressions.
	Cols   []Ident
	Values []Expr

	// Reads lists columns added to the read set by a "-- @reads" pragma:
	// values the application reads back through a channel the SQL text
	// cannot show (the MySQL front-end's substitute for RETURNING).
	Reads []Ident
}

// SetClause is one "col = expr" assignment of an UPDATE.
type SetClause struct {
	Col   Ident
	Value Expr
}

// Ident is one identifier use with its position.
type Ident struct {
	Name string
	Pos  Pos
}

// Param is one placeholder use. ID is the dialect-canonicalized identity
// ("n:<name>" for named styles, "p:<number>" for positional styles); the
// anonymous "?" gets a per-occurrence unique ID so it never witnesses
// dataflow. Text is the placeholder as written, for error messages.
type Param struct {
	ID   string
	Text string
	Pos  Pos
}

// Expr is one scalar expression (select item, SET value, VALUES entry,
// RETURNING item) reduced to what the translation needs: the identifiers it
// mentions (function names excluded, arguments included), and whether the
// whole expression is a single bare column or a single placeholder.
type Expr struct {
	Idents []Ident
	// LoneIdent is true when the expression is exactly one bare identifier
	// (then Idents has exactly one entry) — the only shape that makes an
	// INTO capture a dataflow bind.
	LoneIdent bool
	// LoneParam is set when the expression is exactly one placeholder.
	LoneParam *Param
	Pos       Pos
}

// Cond is a WHERE-clause condition tree. The normalizer folds it with the
// Appendix A algebra: a pure conjunction of "attr = attr-free-expr"
// equalities covering the primary key makes the statement key-based.
type Cond interface{ cond() }

// CondAnd is a conjunction.
type CondAnd struct{ Terms []Cond }

// CondOr is a disjunction; it keeps the mentioned attributes but discards
// equality-binding information.
type CondOr struct{ Terms []Cond }

// CondCmp is one comparison "left op right".
type CondCmp struct {
	Op    string
	Left  CondOperand
	Right CondOperand
	Pos   Pos
}

func (*CondAnd) cond() {}
func (*CondOr) cond()  {}
func (*CondCmp) cond() {}

// CondOperand is one side of a comparison: the identifiers it uses (with
// an InCall marker — identifiers inside function-call arguments are
// filtered against the relation's attributes instead of being required to
// be attributes), and whether the side is a single placeholder.
type CondOperand struct {
	Uses      []IdentUse
	LoneParam *Param
	// LoneIdent is true when the side is exactly one bare identifier (then
	// Uses has one non-call entry) — the shape that makes an equality a
	// dataflow bind for FK inference.
	LoneIdent bool
	Pos       Pos
}

// IdentUse is one identifier use inside a condition operand.
type IdentUse struct {
	Name   string
	InCall bool
	Pos    Pos
}

// Statements appends every statement of the body in declaration order.
func Statements(n Node, out []*Stmt) []*Stmt {
	switch n := n.(type) {
	case *StmtNode:
		return append(out, n.Stmt)
	case *Seq:
		for _, item := range n.Items {
			out = Statements(item, out)
		}
		return out
	case *Choice:
		return Statements(n.B, Statements(n.A, out))
	case *Optional:
		return Statements(n.A, out)
	case *Loop:
		return Statements(n.Body, out)
	default:
		return out
	}
}
