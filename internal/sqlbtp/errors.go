package sqlbtp

import "repro/internal/sqlbtp/dialect"

// ParseError is the positioned error type every stage of the compiler
// reports: Dialect, Program, Line and Col locate the offending source, Msg
// describes the problem. Use errors.As to recover it from a Compile/Parse
// error — the server's :fromSQL handler does exactly that to build its
// structured 400 body.
type ParseError = dialect.Error
