package sqlbtp

import (
	"fmt"
	"strings"

	"repro/internal/btp"
	"repro/internal/relschema"
)

// condInfo summarizes a WHERE clause for the key-based / predicate-based
// decision of Appendix A.
type condInfo struct {
	// attrs are all attributes the condition mentions.
	attrs relschema.AttrSet
	// eqAttrs are the attributes bound by top-level conjunctive equality
	// comparisons to attribute-free expressions.
	eqAttrs relschema.AttrSet
	// conjunctiveEq is true when the whole condition is a conjunction of
	// such equality comparisons.
	conjunctiveEq bool
}

// isKeyCondition reports whether the condition addresses exactly one tuple
// via the primary key: a pure conjunction of equalities covering the key.
func (c condInfo) isKeyCondition(rel *relschema.Relation) bool {
	return c.conjunctiveEq && rel.Key.SubsetOf(c.eqAttrs)
}

// parseStatement parses one SQL statement into a labeled BTP statement.
func (p *parser) parseStatement(progName string) (*btp.Stmt, error) {
	p.skipDecorations(true)
	t := p.cur()
	var (
		stmt *btp.Stmt
		err  error
	)
	switch {
	case p.acceptKeyword("SELECT"):
		stmt, err = p.parseSelect()
	case p.acceptKeyword("UPDATE"):
		stmt, err = p.parseUpdate()
	case p.acceptKeyword("INSERT"):
		stmt, err = p.parseInsert()
	case p.acceptKeyword("DELETE"):
		stmt, err = p.parseDelete()
	default:
		return nil, fmt.Errorf("sqlbtp: line %d: expected statement, found %q", t.line, t.text)
	}
	if err != nil {
		return nil, fmt.Errorf("sqlbtp: program %s: %w", progName, err)
	}
	_ = p.acceptPunct(";")
	// A label comment may follow the statement on the same line.
	p.skipDecorations(true)
	label, err := p.takeLabel()
	if err != nil {
		return nil, err
	}
	stmt.Name = label
	return stmt, nil
}

// parseSelect parses SELECT <exprs> [INTO :v, ...] FROM rel WHERE cond.
func (p *parser) parseSelect() (*btp.Stmt, error) {
	var readAttrs []string
	star := false
	// Select list: expressions separated by commas, optionally followed by
	// INTO :params, until FROM.
	for {
		if p.acceptPunct("*") {
			star = true
		} else {
			attrs, err := p.parseExprAttrs([]string{"FROM", "INTO"})
			if err != nil {
				return nil, err
			}
			readAttrs = append(readAttrs, attrs...)
		}
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if p.acceptKeyword("INTO") {
		for {
			p.skipDecorations(false)
			if p.cur().kind == tokParam {
				p.pos++
			}
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	relName, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	rel := p.schema.Relation(relName)
	if rel == nil {
		return nil, fmt.Errorf("unknown relation %q", relName)
	}
	if star {
		readAttrs = rel.Attrs.Sorted()
	}
	for _, a := range readAttrs {
		if !rel.Attrs.Has(a) {
			return nil, fmt.Errorf("relation %s has no attribute %q", relName, a)
		}
	}
	cond, err := p.parseWhere(rel)
	if err != nil {
		return nil, err
	}
	if cond.isKeyCondition(rel) {
		return &btp.Stmt{Type: btp.KeySel, Rel: relName, ReadSet: btp.Attrs(readAttrs...)}, nil
	}
	return &btp.Stmt{
		Type: btp.PredSel, Rel: relName,
		ReadSet:  btp.Attrs(readAttrs...),
		PReadSet: btp.AttrsOf(cond.attrs),
	}, nil
}

// parseUpdate parses UPDATE rel SET a = expr, ... WHERE cond
// [RETURNING exprs [INTO :v, ...]].
func (p *parser) parseUpdate() (*btp.Stmt, error) {
	relName, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	rel := p.schema.Relation(relName)
	if rel == nil {
		return nil, fmt.Errorf("unknown relation %q", relName)
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	var writeAttrs, readAttrs []string
	for {
		target, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if !rel.Attrs.Has(target) {
			return nil, fmt.Errorf("relation %s has no attribute %q", relName, target)
		}
		writeAttrs = append(writeAttrs, target)
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		attrs, err := p.parseExprAttrs([]string{"WHERE", "RETURNING"})
		if err != nil {
			return nil, err
		}
		readAttrs = append(readAttrs, attrs...)
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	cond, err := p.parseWhere(rel)
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword("RETURNING") {
		for {
			attrs, err := p.parseExprAttrs([]string{"INTO"})
			if err != nil {
				return nil, err
			}
			readAttrs = append(readAttrs, attrs...)
			if p.acceptPunct(",") {
				continue
			}
			break
		}
		if p.acceptKeyword("INTO") {
			for {
				p.skipDecorations(false)
				if p.cur().kind == tokParam {
					p.pos++
				}
				if !p.acceptPunct(",") {
					break
				}
			}
		}
	}
	for _, a := range readAttrs {
		if !rel.Attrs.Has(a) {
			return nil, fmt.Errorf("relation %s has no attribute %q", relName, a)
		}
	}
	if cond.isKeyCondition(rel) {
		return &btp.Stmt{
			Type: btp.KeyUpd, Rel: relName,
			ReadSet:  btp.Attrs(readAttrs...),
			WriteSet: btp.Attrs(writeAttrs...),
		}, nil
	}
	return &btp.Stmt{
		Type: btp.PredUpd, Rel: relName,
		ReadSet:  btp.Attrs(readAttrs...),
		WriteSet: btp.Attrs(writeAttrs...),
		PReadSet: btp.AttrsOf(cond.attrs),
	}, nil
}

// parseInsert parses INSERT INTO rel [(cols)] VALUES (exprs).
func (p *parser) parseInsert() (*btp.Stmt, error) {
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	relName, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	rel := p.schema.Relation(relName)
	if rel == nil {
		return nil, fmt.Errorf("unknown relation %q", relName)
	}
	var cols []string
	if p.acceptPunct("(") {
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if !rel.Attrs.Has(col) {
				return nil, fmt.Errorf("relation %s has no attribute %q", relName, col)
			}
			cols = append(cols, col)
			if p.acceptPunct(",") {
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	depth := 1
	for depth > 0 {
		p.skipDecorations(false)
		t := p.cur()
		if t.kind == tokEOF {
			return nil, fmt.Errorf("unterminated VALUES list for relation %s", relName)
		}
		if t.kind == tokPunct {
			switch t.text {
			case "(":
				depth++
			case ")":
				depth--
			}
		}
		p.pos++
	}
	ws := btp.AttrsOf(rel.Attrs.Clone())
	if len(cols) > 0 {
		ws = btp.Attrs(cols...)
	}
	return &btp.Stmt{Type: btp.Ins, Rel: relName, WriteSet: ws}, nil
}

// parseDelete parses DELETE FROM rel WHERE cond.
func (p *parser) parseDelete() (*btp.Stmt, error) {
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	relName, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	rel := p.schema.Relation(relName)
	if rel == nil {
		return nil, fmt.Errorf("unknown relation %q", relName)
	}
	cond, err := p.parseWhere(rel)
	if err != nil {
		return nil, err
	}
	ws := btp.AttrsOf(rel.Attrs.Clone())
	if cond.isKeyCondition(rel) {
		return &btp.Stmt{Type: btp.KeyDel, Rel: relName, WriteSet: ws}, nil
	}
	return &btp.Stmt{Type: btp.PredDel, Rel: relName, WriteSet: ws, PReadSet: btp.AttrsOf(cond.attrs)}, nil
}

// parseWhere parses the WHERE clause of a statement over rel.
func (p *parser) parseWhere(rel *relschema.Relation) (condInfo, error) {
	if !p.acceptKeyword("WHERE") {
		// No WHERE clause: a full-relation predicate over no attributes.
		return condInfo{attrs: relschema.NewAttrSet()}, nil
	}
	return p.parseOr(rel)
}

// parseOr parses a disjunction.
func (p *parser) parseOr(rel *relschema.Relation) (condInfo, error) {
	left, err := p.parseAnd(rel)
	if err != nil {
		return condInfo{}, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd(rel)
		if err != nil {
			return condInfo{}, err
		}
		left = condInfo{attrs: left.attrs.Union(right.attrs)}
	}
	return left, nil
}

// parseAnd parses a conjunction, tracking equality bindings.
func (p *parser) parseAnd(rel *relschema.Relation) (condInfo, error) {
	left, err := p.parseComparison(rel)
	if err != nil {
		return condInfo{}, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseComparison(rel)
		if err != nil {
			return condInfo{}, err
		}
		left = condInfo{
			attrs:         left.attrs.Union(right.attrs),
			eqAttrs:       left.eqAttrs.Union(right.eqAttrs),
			conjunctiveEq: left.conjunctiveEq && right.conjunctiveEq,
		}
	}
	return left, nil
}

// parseComparison parses "<expr> <op> <expr>" or a parenthesized condition.
func (p *parser) parseComparison(rel *relschema.Relation) (condInfo, error) {
	if p.acceptPunct("(") {
		inner, err := p.parseOr(rel)
		if err != nil {
			return condInfo{}, err
		}
		if err := p.expectPunct(")"); err != nil {
			return condInfo{}, err
		}
		return inner, nil
	}
	leftAttrs, err := p.parseOperandAttrs(rel)
	if err != nil {
		return condInfo{}, err
	}
	p.skipDecorations(false)
	t := p.cur()
	ops := map[string]bool{"=": true, "<": true, ">": true, "<=": true, ">=": true, "<>": true, "!=": true}
	if t.kind != tokPunct || !ops[t.text] {
		return condInfo{}, fmt.Errorf("line %d: expected comparison operator, found %q", t.line, t.text)
	}
	op := t.text
	p.pos++
	rightAttrs, err := p.parseOperandAttrs(rel)
	if err != nil {
		return condInfo{}, err
	}
	info := condInfo{attrs: relschema.NewAttrSet(append(leftAttrs, rightAttrs...)...)}
	// Equality binding attr = attr-free-expr (or symmetric).
	if op == "=" {
		switch {
		case len(leftAttrs) == 1 && len(rightAttrs) == 0:
			info.eqAttrs = relschema.NewAttrSet(leftAttrs[0])
			info.conjunctiveEq = true
		case len(rightAttrs) == 1 && len(leftAttrs) == 0:
			info.eqAttrs = relschema.NewAttrSet(rightAttrs[0])
			info.conjunctiveEq = true
		}
	}
	return info, nil
}

// parseOperandAttrs parses one side of a comparison: an additive expression
// over attributes, parameters and literals; returns the attributes used.
func (p *parser) parseOperandAttrs(rel *relschema.Relation) ([]string, error) {
	var attrs []string
	expectOperand := true
	for {
		p.skipDecorations(false)
		t := p.cur()
		if expectOperand {
			switch {
			case t.kind == tokIdent && rel.Attrs.Has(t.text):
				attrs = append(attrs, t.text)
				p.pos++
			case t.kind == tokIdent:
				// Function call or keyword: functions are followed by '('.
				if p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == "(" {
					p.pos += 2
					depth := 1
					for depth > 0 {
						tt := p.cur()
						if tt.kind == tokEOF {
							return nil, fmt.Errorf("line %d: unterminated call", t.line)
						}
						if tt.kind == tokPunct {
							if tt.text == "(" {
								depth++
							} else if tt.text == ")" {
								depth--
							}
						}
						if tt.kind == tokIdent && rel.Attrs.Has(tt.text) {
							attrs = append(attrs, tt.text)
						}
						p.pos++
					}
				} else {
					return nil, fmt.Errorf("line %d: %q is not an attribute of %s", t.line, t.text, rel.Name)
				}
			case t.kind == tokParam || t.kind == tokNumber || t.kind == tokString:
				p.pos++
			case t.kind == tokPunct && t.text == "(":
				p.pos++
				inner, err := p.parseOperandAttrs(rel)
				if err != nil {
					return nil, err
				}
				attrs = append(attrs, inner...)
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
			case t.kind == tokPunct && t.text == "-":
				p.pos++
				continue // unary minus
			default:
				return nil, fmt.Errorf("line %d: expected operand, found %q", t.line, t.text)
			}
			expectOperand = false
			continue
		}
		// After an operand: continue on arithmetic operators.
		if t.kind == tokPunct && strings.ContainsRune("+-*/", rune(t.text[0])) && len(t.text) == 1 {
			p.pos++
			expectOperand = true
			continue
		}
		return attrs, nil
	}
}

// parseExprAttrs parses an expression (select item, SET value) and returns
// the attributes it references. stops lists keywords that terminate the
// expression at top level.
func (p *parser) parseExprAttrs(stops []string) ([]string, error) {
	// Reuse parseOperandAttrs against a synthetic relation view: we don't
	// know the relation yet for SELECT items (the FROM clause follows), so
	// expressions in select lists are restricted to identifiers that will
	// be validated against the relation afterwards.
	var attrs []string
	depth := 0
	for {
		p.skipDecorations(false)
		t := p.cur()
		if t.kind == tokEOF {
			return attrs, nil
		}
		if t.kind == tokIdent && depth == 0 {
			stop := false
			for _, s := range stops {
				if strings.EqualFold(t.text, s) {
					stop = true
					break
				}
			}
			if stop {
				return attrs, nil
			}
		}
		if t.kind == tokPunct {
			switch t.text {
			case "(":
				depth++
			case ")":
				if depth == 0 {
					return attrs, nil
				}
				depth--
			case ",", ";":
				if depth == 0 {
					return attrs, nil
				}
			}
		}
		if t.kind == tokIdent {
			// Identifiers that are not function calls count as attribute
			// references; validation against the relation happens in the
			// caller.
			isCall := p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == "("
			if !isCall {
				attrs = append(attrs, t.text)
			}
		}
		p.pos++
	}
}
