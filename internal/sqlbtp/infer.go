package sqlbtp

import (
	"sort"
	"strings"

	"repro/internal/sqlbtp/ir"
)

// FK inference (DDL path only). A statement binds an attribute to a
// placeholder when the dataflow is visible in the SQL itself:
//
//   - a top-level conjunctive equality "attr = :p" in WHERE,
//   - "SELECT attr INTO :p" / "RETURNING attr INTO :p" captures,
//   - "INSERT ... VALUES" placeholders, matched to columns positionally.
//
// For a foreign key f: Dom(A1..Ak) → Range(B1..Bk), a statement src over
// Dom binding every Ai to placeholder pi, and a key-based statement dst
// over Range binding every Bi to the same pi, witness the annotation
// dst = f(src). Annotations then propagate across aliases — key-based
// statements over the same relation addressing the same key placeholders
// denote the same tuple, so they are interchangeable as src or dst.

// annotation is one inferred FK annotation dst = fk(src).
type annotation struct {
	fk, src, dst string
}

// stmtBinds extracts the attr → placeholder bindings of one statement. An
// attribute bound to two different placeholders is dropped: the dataflow is
// ambiguous. Anonymous "?" placeholders get unique ids and never witness a
// connection between statements.
func (n *normalizer) stmtBinds(s *ir.Stmt) map[string]string {
	binds := make(map[string]string)
	conflict := make(map[string]bool)
	add := func(attr, id string) {
		if conflict[attr] {
			return
		}
		if old, ok := binds[attr]; ok {
			if old != id {
				delete(binds, attr)
				conflict[attr] = true
			}
			return
		}
		binds[attr] = id
	}
	var walk func(c ir.Cond)
	walk = func(c ir.Cond) {
		switch v := c.(type) {
		case *ir.CondAnd:
			for _, t := range v.Terms {
				walk(t)
			}
		case *ir.CondCmp:
			if v.Op != "=" {
				return
			}
			if v.Left.LoneIdent && v.Right.LoneParam != nil {
				add(v.Left.Uses[0].Name, v.Right.LoneParam.ID)
			} else if v.Right.LoneIdent && v.Left.LoneParam != nil {
				add(v.Right.Uses[0].Name, v.Left.LoneParam.ID)
			}
		}
		// OR blocks bind nothing: neither branch is guaranteed to hold.
	}
	walk(s.Where)
	for i, p := range s.Into {
		if i < len(s.Items) && s.Items[i].LoneIdent {
			add(s.Items[i].Idents[0].Name, p.ID)
		}
	}
	for i, p := range s.RetInto {
		if i < len(s.Returning) && s.Returning[i].LoneIdent {
			add(s.Returning[i].Idents[0].Name, p.ID)
		}
	}
	if s.Kind == ir.Insert {
		if len(s.Cols) > 0 {
			for i, c := range s.Cols {
				if i < len(s.Values) && s.Values[i].LoneParam != nil {
					add(c.Name, s.Values[i].LoneParam.ID)
				}
			}
		} else if t := n.tables[s.Rel]; t != nil {
			for i, col := range t.Cols {
				if i < len(s.Values) && s.Values[i].LoneParam != nil {
					add(col, s.Values[i].LoneParam.ID)
				}
			}
		}
	}
	return binds
}

// stmtFacts is the per-statement view inference works on.
type stmtFacts struct {
	idx      int // position in program order
	label    string
	rel      string
	keyBased bool
	binds    map[string]string
	// keySig identifies the tuple a key-based statement addresses:
	// "rel\x00k1=p1\x00k2=p2..." over the full key, or "" when some key
	// attribute has no placeholder bind.
	keySig string
}

// inferFKs derives the FK annotations of the current program from the
// schema's foreign keys and the placeholder dataflow between statements.
func (n *normalizer) inferFKs() []annotation {
	facts := make([]*stmtFacts, 0, len(n.lowered))
	for i, ls := range n.lowered {
		f := &stmtFacts{
			idx:      i,
			label:    ls.b.Name,
			rel:      ls.b.Rel,
			keyBased: ls.b.Type.IsKeyBased(),
			binds:    n.stmtBinds(ls.ir),
		}
		if f.keyBased {
			if rel := n.schema.Relation(f.rel); rel != nil {
				parts := []string{f.rel}
				complete := true
				for _, k := range rel.Key.Sorted() {
					p, ok := f.binds[k]
					if !ok {
						complete = false
						break
					}
					parts = append(parts, k+"="+p)
				}
				if complete {
					f.keySig = strings.Join(parts, "\x00")
				}
			}
		}
		facts = append(facts, f)
	}

	// Alias groups: key-based statements addressing the same tuple.
	aliases := make(map[string][]*stmtFacts)
	for _, f := range facts {
		if f.keySig != "" {
			aliases[f.keySig] = append(aliases[f.keySig], f)
		}
	}

	pos := make(map[string]int, len(facts))
	for _, f := range facts {
		pos[f.label] = f.idx
	}

	seen := make(map[annotation]bool)
	var out []annotation
	emit := func(a annotation) {
		if a.src != a.dst && !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}

	fks := n.schema.ForeignKeys()
	fkIdx := make(map[string]int, len(fks))
	for i, fk := range fks {
		fkIdx[fk.Name] = i
	}

	for _, fk := range fks {
		for _, src := range facts {
			if src.rel != fk.Dom {
				continue
			}
			// Collect the placeholders src binds for the FK columns.
			params := make([]string, len(fk.DomAttrs))
			ok := true
			for i, a := range fk.DomAttrs {
				if params[i], ok = src.binds[a]; !ok {
					break
				}
			}
			if !ok {
				continue
			}
			for _, dst := range facts {
				if dst == src || dst.rel != fk.Range || !dst.keyBased {
					continue
				}
				match := true
				for i, b := range fk.RangeAttrs {
					if dst.binds[b] != params[i] {
						match = false
						break
					}
				}
				if !match {
					continue
				}
				emit(annotation{fk: fk.Name, src: src.label, dst: dst.label})
				// Propagate across aliases of both endpoints.
				for _, a := range aliases[src.keySig] {
					emit(annotation{fk: fk.Name, src: a.label, dst: dst.label})
				}
				for _, a := range aliases[dst.keySig] {
					emit(annotation{fk: fk.Name, src: src.label, dst: a.label})
				}
			}
		}
	}

	sort.Slice(out, func(i, j int) bool {
		if pos[out[i].dst] != pos[out[j].dst] {
			return pos[out[i].dst] < pos[out[j].dst]
		}
		if pos[out[i].src] != pos[out[j].src] {
			return pos[out[i].src] < pos[out[j].src]
		}
		return fkIdx[out[i].fk] < fkIdx[out[j].fk]
	})
	return out
}
