// Package postgres is the PostgreSQL front-end of the sqlbtp compiler.
//
// Guarantees: double-quoted identifiers with "" escaping; unquoted
// identifiers folded to lower case exactly as PostgreSQL folds them; "$1"
// positional and ":name" (ecpg-style) named placeholders; "expr::type"
// casts; UPDATE ... RETURNING [INTO]; SELECT ... ORDER BY / LIMIT / OFFSET /
// FOR UPDATE; "--" line and "/* */" block comments; CREATE TABLE with
// column- and table-level PRIMARY KEY / FOREIGN KEY / REFERENCES (including
// multi-word types like "double precision" and "character varying").
//
// Rejections: "@name" placeholders (not PostgreSQL syntax), INSERT ...
// RETURNING (a BTP insert has no read set), multi-row INSERT, ALTER TABLE
// (declare constraints inside CREATE TABLE), and types outside the accepted
// set. Every rejection carries line and column.
package postgres

import (
	"strings"

	"repro/internal/sqlbtp/dialect"
	"repro/internal/sqlbtp/ir"
)

// Profile returns the PostgreSQL dialect profile.
func Profile() *dialect.Profile {
	return &dialect.Profile{
		Name:              "postgres",
		DoubleQuoteIdent:  true,
		FoldUnquoted:      strings.ToLower,
		NamedParams:       true,
		DollarNumbered:    true,
		Returning:         true,
		DoubleColonCast:   true,
		BlockComments:     true,
		ProgramDirectives: true,
		DDL:               true,
		Types:             types,
	}
}

// Parse parses a PostgreSQL script: CREATE TABLE statements plus programs
// introduced by "-- program Name [as Abbrev]" directives.
func Parse(src string) (*ir.Script, error) {
	return dialect.ParseScript(Profile(), src)
}

var types = map[string]bool{
	"smallint": true, "integer": true, "int": true, "bigint": true,
	"serial": true, "bigserial": true, "smallserial": true,
	"numeric": true, "decimal": true, "real": true, "float": true,
	"double precision": true, "money": true,
	"varchar": true, "character varying": true, "char": true,
	"character": true, "text": true,
	"boolean": true, "bool": true, "bytea": true, "uuid": true,
	"date": true, "time": true, "timestamp": true, "timestamptz": true,
	"timestamp with time zone": true, "timestamp without time zone": true,
	"interval": true, "json": true, "jsonb": true,
}
