// Package dialect holds the shared front-end machinery of the multi-dialect
// SQL compiler: a position-tracked lexer and a recursive-descent parser, both
// parameterized by a Profile describing one SQL dialect's surface syntax
// (quoting, placeholder styles, comment forms, RETURNING/LIMIT support, type
// spellings). The parser lowers source text into the dialect-neutral IR of
// internal/sqlbtp/ir; everything schema-dependent (attribute resolution, the
// key-vs-predicate decision, FK inference) happens later, in the normalizer.
//
// The concrete dialects live in the subpackages dialect/postgres,
// dialect/mysql and dialect/sqlite; Embedded is the historical benchmark
// dialect of internal/sqlbtp.
package dialect

import "fmt"

// Error is a positioned front-end error. Line and Col are 1-based; Col may be
// zero when only a line is known. Program names the transaction program being
// parsed when the error occurred inside one.
type Error struct {
	Dialect string
	Program string
	Line    int
	Col     int
	Msg     string
}

// Error renders "sqlbtp: <dialect>: program <p>: line L:C: msg" omitting the
// parts that are unknown.
func (e *Error) Error() string {
	s := "sqlbtp: "
	if e.Dialect != "" && e.Dialect != "embedded" {
		s += e.Dialect + ": "
	}
	if e.Program != "" {
		s += fmt.Sprintf("program %s: ", e.Program)
	}
	if e.Line > 0 {
		if e.Col > 0 {
			s += fmt.Sprintf("line %d:%d: ", e.Line, e.Col)
		} else {
			s += fmt.Sprintf("line %d: ", e.Line)
		}
	}
	return s + e.Msg
}

// errf builds a positioned Error.
func errf(dialectName, program string, line, col int, format string, args ...any) *Error {
	return &Error{
		Dialect: dialectName,
		Program: program,
		Line:    line,
		Col:     col,
		Msg:     fmt.Sprintf(format, args...),
	}
}

// Kind classifies a token.
type Kind int

const (
	EOF Kind = iota
	Ident
	Param  // placeholder; Text keeps the sigil as written (":x", "$1", "?", "@x")
	Number // numeric literal
	String // string literal body (quotes stripped)
	Punct
	Pragma    // "-- @..." comment; Text is the body after "--", trimmed
	Label     // "-- qN" comment; Text is "qN"
	Directive // "-- program ..." comment; Text is the body after "--", trimmed
)

// Token is one lexical token. Line and Col are the 1-based position of the
// token's first byte. Quoted marks identifiers that were written in the
// dialect's quoting form: they are exempt from case folding and never match
// keywords. Tokens are comparable.
type Token struct {
	Kind   Kind
	Text   string
	Line   int
	Col    int
	Quoted bool
}

// Profile describes one SQL dialect's surface syntax. The zero value accepts
// almost nothing useful; construct profiles via Embedded or the dialect
// subpackages.
type Profile struct {
	// Name tags errors and selects the profile in sqlbtp.Compile.
	Name string

	// Identifier quoting. FoldUnquoted, when non-nil, canonicalizes every
	// unquoted identifier (PostgreSQL folds to lower case); quoted
	// identifiers are always taken verbatim.
	DoubleQuoteIdent bool // "ident"
	BacktickIdent    bool // `ident`
	BracketIdent     bool // [ident]
	FoldUnquoted     func(string) string

	// Placeholder styles.
	NamedParams      bool // :name
	AtParams         bool // @name
	DollarNumbered   bool // $1
	DollarNamed      bool // $name
	QuestionParams   bool // ?
	QuestionNumbered bool // ?1

	// Statement-form toggles.
	Returning       bool   // UPDATE ... RETURNING
	ReturningErr    string // when !Returning: hint appended to the rejection
	DoubleColonCast bool   // expr::type
	CommaLimit      bool   // LIMIT offset, count
	HashComments    bool   // # line comments
	BlockComments   bool   // /* ... */ comments

	// Program structure: exactly one of ProgramHeader ("PROGRAM Name ...:")
	// or ProgramDirectives ("-- program Name [as Ab]") should be set.
	ProgramHeader     bool
	ProgramDirectives bool

	// DDL support.
	DDL          bool // CREATE TABLE accepted at top level
	TableOptions bool // trailing "ENGINE=..." style table options (MySQL)
	WithoutRowid bool // "WITHOUT ROWID" / "STRICT" table suffix (SQLite)
	Types        map[string]bool
	FlexTypes    bool // any type name accepted, and column types optional (SQLite)
}

// Embedded is the historical benchmark dialect of internal/sqlbtp: PROGRAM
// headers, ":name" placeholders only, no identifier quoting, no DDL.
func Embedded() *Profile {
	return &Profile{
		Name:          "embedded",
		NamedParams:   true,
		Returning:     true,
		ProgramHeader: true,
	}
}
