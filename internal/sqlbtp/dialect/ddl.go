package dialect

import (
	"strings"

	"repro/internal/sqlbtp/ir"
)

// columnConstraintKw lists the keywords that end a column's type-name word
// sequence ("double precision" is two words, but "x int NOT NULL" stops the
// type at "int").
var columnConstraintKw = map[string]bool{
	"primary": true, "not": true, "null": true, "unique": true,
	"default": true, "references": true, "check": true, "constraint": true,
	"auto_increment": true, "autoincrement": true, "collate": true,
}

// parseCreateTable parses CREATE TABLE [IF NOT EXISTS] name (<defs>)
// [<table suffix>] [;]. Column types are validated against the profile's
// type set; primary keys and FOREIGN KEY / REFERENCES constraints feed the
// normalizer, everything else (NOT NULL, DEFAULT, CHECK, UNIQUE, COLLATE,
// engine options) is tolerated and discarded. ALTER TABLE is deliberately
// unsupported: constraints must appear inside the CREATE TABLE.
func (p *parser) parseCreateTable() (*ir.Table, error) {
	start := p.cur()
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
	}
	nameTok, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	tbl := &ir.Table{Name: p.name(nameTok), Pos: ps(start)}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		if p.atKeyword("PRIMARY") || p.atKeyword("FOREIGN") || p.atKeyword("UNIQUE") ||
			p.atKeyword("CHECK") || p.atKeyword("CONSTRAINT") {
			if err := p.parseTableConstraint(tbl); err != nil {
				return nil, err
			}
		} else {
			if err := p.parseColumnDef(tbl); err != nil {
				return nil, err
			}
		}
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if p.prof.WithoutRowid {
		for {
			if p.acceptKeyword("WITHOUT") {
				if err := p.expectKeyword("ROWID"); err != nil {
					return nil, err
				}
				continue
			}
			if p.acceptKeyword("STRICT") {
				continue
			}
			break
		}
	}
	if p.prof.TableOptions {
		// MySQL trailing table options (ENGINE=InnoDB, AUTO_INCREMENT=...,
		// DEFAULT CHARSET=...): skipped up to the statement terminator.
		for !p.atPunct(";") && !p.at(EOF) {
			p.pos++
		}
	}
	_ = p.acceptPunct(";")
	return tbl, nil
}

// parseColumnDef parses one "name type [constraints...]" column definition.
func (p *parser) parseColumnDef(tbl *ir.Table) error {
	colTok, err := p.expectIdent()
	if err != nil {
		return err
	}
	col := p.name(colTok)
	tbl.Cols = append(tbl.Cols, col)

	// Type: one or more identifier words ("double precision", "character
	// varying"), then an optional "(n[,m])" precision.
	var words []string
	for len(words) < 4 {
		t := p.cur()
		if t.Kind != Ident || t.Quoted || columnConstraintKw[strings.ToLower(t.Text)] {
			break
		}
		words = append(words, strings.ToLower(t.Text))
		p.pos++
	}
	if len(words) == 0 {
		if !p.prof.FlexTypes {
			t := p.cur()
			return p.errAt(t, "missing type for column %q", col)
		}
	} else {
		typeName := strings.Join(words, " ")
		if !p.prof.FlexTypes && !p.prof.Types[typeName] {
			return p.errAt(colTok, "unknown %s type %q for column %q", p.prof.Name, typeName, col)
		}
		if p.atPunct("(") {
			p.skipBalancedParens()
		}
	}

	// Column constraints.
	pendingConstraint := "" // CONSTRAINT name awaiting its clause
	for {
		switch {
		case p.acceptKeyword("PRIMARY"):
			if err := p.expectKeyword("KEY"); err != nil {
				return err
			}
			if !p.acceptKeyword("ASC") {
				_ = p.acceptKeyword("DESC")
			}
			tbl.Key = append(tbl.Key, col)
			pendingConstraint = ""
		case p.acceptKeyword("NOT"):
			if err := p.expectKeyword("NULL"); err != nil {
				return err
			}
			pendingConstraint = ""
		case p.acceptKeyword("NULL"), p.acceptKeyword("UNIQUE"),
			p.acceptKeyword("AUTO_INCREMENT"), p.acceptKeyword("AUTOINCREMENT"):
			pendingConstraint = ""
		case p.acceptKeyword("COLLATE"):
			if _, err := p.expectIdent(); err != nil {
				return err
			}
			pendingConstraint = ""
		case p.acceptKeyword("DEFAULT"):
			if err := p.skipDefaultValue(col); err != nil {
				return err
			}
			pendingConstraint = ""
		case p.acceptKeyword("CHECK"):
			if !p.atPunct("(") {
				t := p.cur()
				return p.errAt(t, "expected \"(\" after CHECK, found %s", describe(t))
			}
			p.skipBalancedParens()
			pendingConstraint = ""
		case p.acceptKeyword("CONSTRAINT"):
			nameTok, err := p.expectIdent()
			if err != nil {
				return err
			}
			pendingConstraint = p.name(nameTok)
		case p.acceptKeyword("REFERENCES"):
			fk := &ir.ForeignKey{Name: pendingConstraint, Cols: []string{col}}
			if err := p.parseReferences(fk); err != nil {
				return err
			}
			tbl.FKs = append(tbl.FKs, fk)
			pendingConstraint = ""
		default:
			return nil
		}
	}
}

// skipDefaultValue consumes a DEFAULT value: a possibly signed literal, an
// identifier like CURRENT_TIMESTAMP, or a parenthesized expression.
func (p *parser) skipDefaultValue(col string) error {
	_ = p.acceptPunct("-")
	t := p.cur()
	switch {
	case t.Kind == Number || t.Kind == String || t.Kind == Ident:
		p.pos++
		if p.atPunct("(") { // CURRENT_DATE(), now()
			p.skipBalancedParens()
		}
	case t.Kind == Punct && t.Text == "(":
		p.skipBalancedParens()
	default:
		return p.errAt(t, "expected DEFAULT value for column %q, found %s", col, describe(t))
	}
	return nil
}

// parseTableConstraint parses one table-level constraint:
// [CONSTRAINT name] (PRIMARY KEY (cols) | FOREIGN KEY (cols) REFERENCES
// tbl [(cols)] | UNIQUE (cols) | CHECK (...)).
func (p *parser) parseTableConstraint(tbl *ir.Table) error {
	cname := ""
	pos := ps(p.cur())
	if p.acceptKeyword("CONSTRAINT") {
		nameTok, err := p.expectIdent()
		if err != nil {
			return err
		}
		cname = p.name(nameTok)
	}
	switch {
	case p.acceptKeyword("PRIMARY"):
		if err := p.expectKeyword("KEY"); err != nil {
			return err
		}
		cols, err := p.parenIdentList()
		if err != nil {
			return err
		}
		tbl.Key = append(tbl.Key, cols...)
	case p.acceptKeyword("FOREIGN"):
		if err := p.expectKeyword("KEY"); err != nil {
			return err
		}
		cols, err := p.parenIdentList()
		if err != nil {
			return err
		}
		fk := &ir.ForeignKey{Name: cname, Cols: cols, Pos: pos}
		if err := p.expectKeyword("REFERENCES"); err != nil {
			return err
		}
		if err := p.parseReferences(fk); err != nil {
			return err
		}
		tbl.FKs = append(tbl.FKs, fk)
	case p.acceptKeyword("UNIQUE"):
		if _, err := p.parenIdentList(); err != nil {
			return err
		}
	case p.acceptKeyword("CHECK"):
		if !p.atPunct("(") {
			t := p.cur()
			return p.errAt(t, "expected \"(\" after CHECK, found %s", describe(t))
		}
		p.skipBalancedParens()
	default:
		t := p.cur()
		return p.errAt(t, "expected table constraint, found %s", describe(t))
	}
	return nil
}

// parseReferences parses the tail of a REFERENCES clause (the keyword is
// already consumed): the referenced table, an optional column list (absent
// means the referenced table's primary key), and optional ON DELETE /
// ON UPDATE actions.
func (p *parser) parseReferences(fk *ir.ForeignKey) error {
	refTok, err := p.expectIdent()
	if err != nil {
		return err
	}
	fk.RefTable = p.name(refTok)
	if fk.Pos == (ir.Pos{}) {
		fk.Pos = ps(refTok)
	}
	if p.atPunct("(") {
		cols, err := p.parenIdentList()
		if err != nil {
			return err
		}
		fk.RefCols = cols
	}
	for p.acceptKeyword("ON") {
		if !p.acceptKeyword("DELETE") {
			if err := p.expectKeyword("UPDATE"); err != nil {
				return err
			}
		}
		switch {
		case p.acceptKeyword("CASCADE"), p.acceptKeyword("RESTRICT"):
		case p.acceptKeyword("SET"):
			if !p.acceptKeyword("NULL") {
				if err := p.expectKeyword("DEFAULT"); err != nil {
					return err
				}
			}
		case p.acceptKeyword("NO"):
			if err := p.expectKeyword("ACTION"); err != nil {
				return err
			}
		default:
			t := p.cur()
			return p.errAt(t, "expected referential action, found %s", describe(t))
		}
	}
	return nil
}

// parenIdentList parses "(ident, ident, ...)".
func (p *parser) parenIdentList() ([]string, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var cols []string
	for {
		t, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		cols = append(cols, p.name(t))
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return cols, nil
}
