package dialect

import (
	"fmt"
	"strings"

	"repro/internal/sqlbtp/ir"
)

// ParseScript parses a full compilation unit: CREATE TABLE declarations
// (profiles with DDL support) and transaction programs, introduced either by
// "PROGRAM Name ...:" headers (embedded) or "-- program Name [as Abbrev]"
// directives (the real dialects).
func ParseScript(prof *Profile, src string) (*ir.Script, error) {
	toks, err := Lex(prof, src)
	if err != nil {
		return nil, err
	}
	p := &parser{prof: prof, toks: toks}
	s := &ir.Script{}
	for {
		if p.err != nil {
			return nil, p.err
		}
		switch {
		case p.at(EOF):
			return s, nil
		case p.atKeyword("CREATE"):
			if !prof.DDL {
				t := p.cur()
				return nil, p.errAt(t, "CREATE TABLE is not supported in the %s dialect (supply a prebuilt schema instead)", prof.Name)
			}
			tbl, err := p.parseCreateTable()
			if err != nil {
				return nil, err
			}
			s.Tables = append(s.Tables, tbl)
		case prof.ProgramDirectives:
			if !p.at(Directive) {
				t := p.cur()
				return nil, p.errAt(t, "expected CREATE TABLE or a \"-- program <name>\" directive, found %s", describe(t))
			}
			prog, err := p.parseDirectiveProgram()
			if err != nil {
				return nil, err
			}
			s.Programs = append(s.Programs, prog)
		default:
			prog, err := p.parseHeaderProgram()
			if err != nil {
				return nil, err
			}
			s.Programs = append(s.Programs, prog)
		}
	}
}

// ParseProgramBody parses src as the body of a single program named name: a
// statement sequence with optional control flow, without a PROGRAM header or
// "-- program" directive. It is the entry point for API calls that submit
// each program's SQL separately.
func ParseProgramBody(prof *Profile, name, abbrev, src string) (*ir.Program, error) {
	toks, err := Lex(prof, src)
	if err != nil {
		err.(*Error).Program = name
		return nil, err
	}
	p := &parser{prof: prof, toks: toks}
	p.resetProgram(name)
	body, err := p.parseBody()
	if err != nil {
		return nil, err
	}
	if p.err != nil {
		return nil, p.err
	}
	if !p.at(EOF) {
		t := p.cur()
		return nil, p.errAt(t, "expected end of program, found %s", describe(t))
	}
	return &ir.Program{Name: name, Abbrev: abbrev, Body: body, FKs: p.pragmas}, nil
}

type parser struct {
	prof *Profile
	toks []Token
	pos  int
	// err records the first error raised inside decoration handling, which
	// runs in contexts that cannot return one; the parse loops check it.
	err error

	// Per-program state.
	program      string
	nextLabel    int
	pendingLabel string
	pendingPos   ir.Pos
	usedLabels   map[string]bool
	pragmas      []ir.FKPragma
	curStmt      *ir.Stmt // statement being parsed ("-- @reads" target)
	lastStmt     *ir.Stmt // last completed statement ("-- @reads" target)
	anon         int      // anonymous "?" counter
}

func (p *parser) resetProgram(name string) {
	p.program = name
	p.nextLabel = 0
	p.pendingLabel = ""
	p.usedLabels = map[string]bool{}
	p.pragmas = nil
	p.curStmt = nil
	p.lastStmt = nil
	p.anon = 0
}

func ps(t Token) ir.Pos { return ir.Pos{Line: t.Line, Col: t.Col} }

func describe(t Token) string {
	if t.Kind == EOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Text)
}

func (p *parser) errAt(t Token, format string, args ...any) error {
	return errf(p.prof.Name, p.program, t.Line, t.Col, format, args...)
}

func (p *parser) errPos(pos ir.Pos, format string, args ...any) error {
	return errf(p.prof.Name, p.program, pos.Line, pos.Col, format, args...)
}

// fail records an error raised while consuming decorations.
func (p *parser) fail(t Token, format string, args ...any) {
	if p.err == nil {
		p.err = p.errAt(t, format, args...)
	}
}

// name canonicalizes an identifier token: unquoted identifiers go through
// the profile's case folding, quoted ones are taken verbatim.
func (p *parser) name(t Token) string {
	if !t.Quoted && p.prof.FoldUnquoted != nil {
		return p.prof.FoldUnquoted(t.Text)
	}
	return t.Text
}

// mkParam canonicalizes a placeholder token into its dataflow identity:
// named styles (":x", "@x", "$x") match by name, numbered styles ("$1",
// "?1") by number, and every anonymous "?" is unique so it never witnesses
// dataflow between statements.
func (p *parser) mkParam(t Token) ir.Param {
	text := t.Text
	id := ""
	switch text[0] {
	case '?':
		if len(text) == 1 {
			p.anon++
			id = fmt.Sprintf("anon:%d", p.anon)
		} else {
			id = "p:" + text[1:]
		}
	case '$':
		if isAllDigits(text[1:]) {
			id = "p:" + text[1:]
		} else {
			id = "n:" + text[1:]
		}
	default: // ':' or '@'
		id = "n:" + text[1:]
	}
	return ir.Param{ID: id, Text: text, Pos: ps(t)}
}

func isAllDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if !isDigit(s[i]) {
			return false
		}
	}
	return len(s) > 0
}

// skipDecorations consumes label and pragma tokens, remembering the label
// for the next (or current) statement and applying pragmas.
func (p *parser) skipDecorations() {
	for {
		t := p.toks[p.pos]
		switch t.Kind {
		case Label:
			p.pendingLabel = t.Text
			p.pendingPos = ps(t)
			p.pos++
		case Pragma:
			p.recordPragma(t)
			p.pos++
		default:
			return
		}
	}
}

func (p *parser) recordPragma(t Token) {
	body := strings.TrimSpace(t.Text)
	switch {
	case strings.HasPrefix(body, "@fk"):
		// Format: @fk qj = f(qi). Malformed pragmas are recorded with an
		// empty Dst and reported when annotations are applied.
		rest := strings.TrimSpace(strings.TrimPrefix(body, "@fk"))
		eq := strings.Index(rest, "=")
		open := strings.Index(rest, "(")
		closeP := strings.Index(rest, ")")
		if eq < 0 || open < eq || closeP < open {
			p.pragmas = append(p.pragmas, ir.FKPragma{Pos: ps(t)})
			return
		}
		p.pragmas = append(p.pragmas, ir.FKPragma{
			Dst: strings.TrimSpace(rest[:eq]),
			FK:  strings.TrimSpace(rest[eq+1 : open]),
			Src: strings.TrimSpace(rest[open+1 : closeP]),
			Pos: ps(t),
		})
	case strings.HasPrefix(body, "@reads"):
		rest := strings.TrimPrefix(body, "@reads")
		cols := strings.FieldsFunc(rest, func(r rune) bool {
			return r == ',' || r == ' ' || r == '\t'
		})
		if len(cols) == 0 {
			p.fail(t, "empty @reads pragma (want \"-- @reads col, ...\")")
			return
		}
		target := p.curStmt
		if target == nil {
			target = p.lastStmt
		}
		if target == nil {
			p.fail(t, "\"-- @reads\" pragma must follow a statement")
			return
		}
		for _, c := range cols {
			name := c
			if p.prof.FoldUnquoted != nil {
				name = p.prof.FoldUnquoted(name)
			}
			target.Reads = append(target.Reads, ir.Ident{Name: name, Pos: ps(t)})
		}
	}
	// Unknown pragmas are ignored.
}

func (p *parser) cur() Token {
	p.skipDecorations()
	return p.toks[p.pos]
}

func (p *parser) at(k Kind) bool { return p.cur().Kind == k }

func (p *parser) atPunct(s string) bool {
	t := p.cur()
	return t.Kind == Punct && t.Text == s
}

func isKw(t Token, kw string) bool {
	return t.Kind == Ident && !t.Quoted && strings.EqualFold(t.Text, kw)
}

func (p *parser) atKeyword(kw string) bool { return isKw(p.cur(), kw) }

func (p *parser) acceptKeyword(kw string) bool {
	if p.atKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		t := p.cur()
		return p.errAt(t, "expected %q, found %s", kw, describe(t))
	}
	return nil
}

func (p *parser) acceptPunct(s string) bool {
	if p.atPunct(s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		t := p.cur()
		return p.errAt(t, "expected %q, found %s", s, describe(t))
	}
	return nil
}

func (p *parser) expectIdent() (Token, error) {
	t := p.cur()
	if t.Kind != Ident {
		return t, p.errAt(t, "expected identifier, found %s", describe(t))
	}
	p.pos++
	return t, nil
}

// rawNextIsOpenParen reports whether the token immediately following the
// current one is "(" — the function-call lookahead.
func (p *parser) rawNextIsOpenParen() bool {
	if p.pos+1 >= len(p.toks) {
		return false
	}
	n := p.toks[p.pos+1]
	return n.Kind == Punct && n.Text == "("
}

// parseHeaderProgram parses "PROGRAM Name [AS Abbrev] [(params)] [:] <body>".
func (p *parser) parseHeaderProgram() (*ir.Program, error) {
	p.resetProgram("")
	start := p.cur()
	if err := p.expectKeyword("PROGRAM"); err != nil {
		return nil, err
	}
	nameTok, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	p.program = nameTok.Text
	prog := &ir.Program{Name: nameTok.Text, Pos: ps(start)}
	if p.acceptKeyword("AS") {
		abTok, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		prog.Abbrev = abTok.Text
	}
	// Optional parameter list: documentation only.
	if p.acceptPunct("(") {
		for !p.acceptPunct(")") {
			if p.at(EOF) {
				return nil, p.errAt(start, "unterminated parameter list for program %s", prog.Name)
			}
			p.pos++
		}
	}
	_ = p.acceptPunct(":")
	return p.finishProgram(prog)
}

// parseDirectiveProgram parses a program introduced by a
// "-- program Name [as Abbrev]" directive comment.
func (p *parser) parseDirectiveProgram() (*ir.Program, error) {
	t := p.toks[p.pos] // the Directive token; cur() was checked by the caller
	p.pos++
	fields := strings.Fields(t.Text)
	prog := &ir.Program{Pos: ps(t)}
	switch {
	case len(fields) == 2:
		prog.Name = fields[1]
	case len(fields) == 4 && strings.EqualFold(fields[2], "as"):
		prog.Name = fields[1]
		prog.Abbrev = fields[3]
	default:
		return nil, p.errAt(t, "malformed program directive (want \"-- program Name [as Abbrev]\")")
	}
	p.resetProgram(prog.Name)
	return p.finishProgram(prog)
}

func (p *parser) finishProgram(prog *ir.Program) (*ir.Program, error) {
	body, err := p.parseBody()
	if err != nil {
		return nil, err
	}
	if p.err != nil {
		return nil, p.err
	}
	prog.Body = body
	prog.FKs = p.pragmas
	return prog, nil
}

// parseBody parses statements until COMMIT (consumed), or ELSE / ENDIF /
// END / a new program / a CREATE TABLE / EOF (not consumed).
func (p *parser) parseBody() (ir.Node, error) {
	var items []ir.Node
	for {
		if p.err != nil {
			return nil, p.err
		}
		p.skipDecorations()
		switch {
		case p.at(EOF), p.at(Directive),
			p.atKeyword("ELSE"), p.atKeyword("ENDIF"), p.atKeyword("END"),
			p.atKeyword("PROGRAM"), p.prof.DDL && p.atKeyword("CREATE"):
			return seqOf(items), nil
		case p.acceptKeyword("COMMIT"):
			_ = p.acceptPunct(";")
			return seqOf(items), nil
		case p.acceptKeyword("BEGIN"):
			if !p.acceptKeyword("TRANSACTION") {
				_ = p.acceptKeyword("WORK")
			}
			_ = p.acceptPunct(";")
		case p.acceptKeyword("START"):
			if err := p.expectKeyword("TRANSACTION"); err != nil {
				return nil, err
			}
			_ = p.acceptPunct(";")
		case p.acceptKeyword("IF"):
			node, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			items = append(items, node)
		case p.acceptKeyword("REPEAT"):
			node, err := p.parseRepeat()
			if err != nil {
				return nil, err
			}
			items = append(items, node)
		default:
			node, err := p.parseStatement()
			if err != nil {
				return nil, err
			}
			items = append(items, node)
		}
	}
}

func seqOf(items []ir.Node) ir.Node {
	if len(items) == 1 {
		return items[0]
	}
	return &ir.Seq{Items: items}
}

// parseIf parses IF [<cond>] [THEN] ... [ELSE ...] (ENDIF | END IF) [;].
// The condition is irrelevant to the BTP abstraction and is skipped.
func (p *parser) parseIf() (ir.Node, error) {
	p.skipCondition()
	_ = p.acceptKeyword("THEN")
	_ = p.acceptPunct(";")
	thenBody, err := p.parseBody()
	if err != nil {
		return nil, err
	}
	var elseBody ir.Node
	hasElse := false
	if p.acceptKeyword("ELSE") {
		hasElse = true
		elseBody, err = p.parseBody()
		if err != nil {
			return nil, err
		}
	}
	if !p.acceptKeyword("ENDIF") {
		if err := p.expectKeyword("END"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("IF"); err != nil {
			return nil, err
		}
	}
	_ = p.acceptPunct(";")
	if hasElse {
		return &ir.Choice{A: thenBody, B: elseBody}, nil
	}
	return &ir.Optional{A: thenBody}, nil
}

// parseRepeat parses REPEAT ... END REPEAT [;].
func (p *parser) parseRepeat() (ir.Node, error) {
	body, err := p.parseBody()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("REPEAT"); err != nil {
		return nil, err
	}
	_ = p.acceptPunct(";")
	return &ir.Loop{Body: body}, nil
}

// skipCondition advances over tokens until THEN or a statement-starting
// keyword.
func (p *parser) skipCondition() {
	stops := []string{"THEN", "SELECT", "UPDATE", "INSERT", "DELETE", "IF",
		"REPEAT", "COMMIT", "ELSE", "ENDIF", "END"}
	for {
		t := p.cur()
		if t.Kind == EOF || t.Kind == Directive {
			return
		}
		if t.Kind == Ident && !t.Quoted {
			for _, s := range stops {
				if strings.EqualFold(t.Text, s) {
					return
				}
			}
		}
		p.pos++
	}
}

// parseStatement parses one SQL statement and assigns its label.
func (p *parser) parseStatement() (ir.Node, error) {
	t := p.cur()
	var (
		stmt *ir.Stmt
		err  error
	)
	switch {
	case p.acceptKeyword("SELECT"):
		stmt, err = p.parseSelect(ps(t))
	case p.acceptKeyword("UPDATE"):
		stmt, err = p.parseUpdate(ps(t))
	case p.acceptKeyword("INSERT"):
		stmt, err = p.parseInsert(ps(t))
	case p.acceptKeyword("DELETE"):
		stmt, err = p.parseDelete(ps(t))
	default:
		return nil, p.errAt(t, "expected statement, found %s", describe(t))
	}
	if err != nil {
		return nil, err
	}
	if p.err != nil {
		return nil, p.err
	}
	_ = p.acceptPunct(";")
	// A label comment may follow the statement on the same line.
	p.skipDecorations()
	if err := p.takeLabel(stmt); err != nil {
		return nil, err
	}
	p.curStmt = nil
	p.lastStmt = stmt
	return &ir.StmtNode{Stmt: stmt}, nil
}

// takeLabel assigns the pending "-- qN" label, or auto-numbers.
func (p *parser) takeLabel(stmt *ir.Stmt) error {
	label := p.pendingLabel
	pos := p.pendingPos
	p.pendingLabel = ""
	if label == "" {
		p.nextLabel++
		label = fmt.Sprintf("q%d", p.nextLabel)
		for p.usedLabels[label] {
			p.nextLabel++
			label = fmt.Sprintf("q%d", p.nextLabel)
		}
		pos = stmt.Pos
	}
	if p.usedLabels[label] {
		return p.errPos(pos, "duplicate statement label %q", label)
	}
	p.usedLabels[label] = true
	stmt.Label = label
	return nil
}

// parseSelect parses SELECT <exprs> [INTO params] FROM rel [WHERE cond]
// [ORDER BY cols] [LIMIT n [OFFSET m]] [FOR UPDATE].
func (p *parser) parseSelect(pos ir.Pos) (*ir.Stmt, error) {
	st := &ir.Stmt{Kind: ir.Select, Pos: pos}
	p.curStmt = st
	for {
		if p.acceptPunct("*") {
			st.Star = true
		} else {
			st.Items = append(st.Items, p.parseExpr("FROM", "INTO"))
		}
		if !p.acceptPunct(",") {
			break
		}
	}
	if p.acceptKeyword("INTO") {
		params, err := p.paramList()
		if err != nil {
			return nil, err
		}
		st.Into = params
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	relTok, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st.Rel = p.name(relTok)
	if st.Where, err = p.parseWhereOpt(); err != nil {
		return nil, err
	}
	if err := p.parseSelectTail(st); err != nil {
		return nil, err
	}
	return st, nil
}

// parseSelectTail parses ORDER BY / LIMIT / OFFSET / FOR UPDATE. ORDER BY
// columns join the read set; LIMIT and OFFSET are cardinality-only and must
// not reference columns; FOR UPDATE changes nothing in the BTP abstraction.
func (p *parser) parseSelectTail(st *ir.Stmt) error {
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return err
		}
		for {
			t := p.cur()
			switch t.Kind {
			case Ident:
				p.pos++
				st.OrderBy = append(st.OrderBy, ir.Ident{Name: p.name(t), Pos: ps(t)})
			case Number, Param:
				p.pos++ // ordinals and parameters don't touch attributes
			default:
				return p.errAt(t, "expected ORDER BY column, found %s", describe(t))
			}
			if !p.acceptKeyword("ASC") {
				_ = p.acceptKeyword("DESC")
			}
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		if err := p.cardinalityExpr("LIMIT", "OFFSET", "FOR"); err != nil {
			return err
		}
		if p.prof.CommaLimit && p.acceptPunct(",") {
			if err := p.cardinalityExpr("LIMIT", "OFFSET", "FOR"); err != nil {
				return err
			}
		}
	}
	if p.acceptKeyword("OFFSET") {
		if err := p.cardinalityExpr("OFFSET", "FOR"); err != nil {
			return err
		}
	}
	if p.acceptKeyword("FOR") {
		if !p.acceptKeyword("UPDATE") && !p.acceptKeyword("SHARE") {
			t := p.cur()
			return p.errAt(t, "expected \"UPDATE\" or \"SHARE\" after \"FOR\", found %s", describe(t))
		}
	}
	return nil
}

// cardinalityExpr parses a LIMIT/OFFSET expression and rejects column
// references in it: row-count bounds don't contribute to any read set, so
// letting attributes appear there would silently drop dependencies.
func (p *parser) cardinalityExpr(clause string, stops ...string) error {
	e := p.parseExpr(stops...)
	if len(e.Idents) > 0 {
		return p.errPos(e.Idents[0].Pos, "%s must not reference columns (found %q)", clause, e.Idents[0].Name)
	}
	return nil
}

// parseUpdate parses UPDATE rel SET col = expr, ... [WHERE cond]
// [RETURNING exprs [INTO params]].
func (p *parser) parseUpdate(pos ir.Pos) (*ir.Stmt, error) {
	st := &ir.Stmt{Kind: ir.Update, Pos: pos}
	p.curStmt = st
	relTok, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st.Rel = p.name(relTok)
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		colTok, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		val := p.parseExpr("WHERE", "RETURNING")
		st.Sets = append(st.Sets, ir.SetClause{
			Col:   ir.Ident{Name: p.name(colTok), Pos: ps(colTok)},
			Value: val,
		})
		if !p.acceptPunct(",") {
			break
		}
	}
	if st.Where, err = p.parseWhereOpt(); err != nil {
		return nil, err
	}
	if p.atKeyword("RETURNING") {
		t := p.cur()
		if !p.prof.Returning {
			msg := fmt.Sprintf("RETURNING is not supported in the %s dialect", p.prof.Name)
			if p.prof.ReturningErr != "" {
				msg += " (" + p.prof.ReturningErr + ")"
			}
			return nil, p.errAt(t, "%s", msg)
		}
		p.pos++
		for {
			st.Returning = append(st.Returning, p.parseExpr("INTO"))
			if !p.acceptPunct(",") {
				break
			}
		}
		if p.acceptKeyword("INTO") {
			params, err := p.paramList()
			if err != nil {
				return nil, err
			}
			st.RetInto = params
		}
	}
	return st, nil
}

// parseInsert parses INSERT INTO rel [(cols)] VALUES (exprs): single-row
// only, and never with RETURNING (a BTP insert has an undefined read set,
// so there is nothing for RETURNING to mean).
func (p *parser) parseInsert(pos ir.Pos) (*ir.Stmt, error) {
	st := &ir.Stmt{Kind: ir.Insert, Pos: pos}
	p.curStmt = st
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	relTok, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st.Rel = p.name(relTok)
	if p.acceptPunct("(") {
		for {
			colTok, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, ir.Ident{Name: p.name(colTok), Pos: ps(colTok)})
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	if !p.atPunct(")") {
		for {
			st.Values = append(st.Values, p.parseExpr())
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if p.atPunct(",") {
		t := p.cur()
		return nil, p.errAt(t, "multi-row INSERT is not supported (one row per statement)")
	}
	if p.atKeyword("RETURNING") {
		t := p.cur()
		return nil, p.errAt(t, "INSERT ... RETURNING is not supported (a BTP insert has no read set)")
	}
	return st, nil
}

// parseDelete parses DELETE FROM rel [WHERE cond].
func (p *parser) parseDelete(pos ir.Pos) (*ir.Stmt, error) {
	st := &ir.Stmt{Kind: ir.Delete, Pos: pos}
	p.curStmt = st
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	relTok, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st.Rel = p.name(relTok)
	var err2 error
	if st.Where, err2 = p.parseWhereOpt(); err2 != nil {
		return nil, err2
	}
	return st, nil
}

func (p *parser) paramList() ([]ir.Param, error) {
	var out []ir.Param
	for {
		t := p.cur()
		if t.Kind != Param {
			return nil, p.errAt(t, "expected parameter, found %s", describe(t))
		}
		p.pos++
		out = append(out, p.mkParam(t))
		if !p.acceptPunct(",") {
			break
		}
	}
	return out, nil
}

// parseWhereOpt parses the optional WHERE clause; nil means no WHERE.
func (p *parser) parseWhereOpt() (ir.Cond, error) {
	if !p.acceptKeyword("WHERE") {
		return nil, nil
	}
	return p.parseOr()
}

func (p *parser) parseOr() (ir.Cond, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	terms := []ir.Cond{left}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		terms = append(terms, right)
	}
	if len(terms) == 1 {
		return terms[0], nil
	}
	return &ir.CondOr{Terms: terms}, nil
}

func (p *parser) parseAnd() (ir.Cond, error) {
	left, err := p.parseComparison()
	if err != nil {
		return nil, err
	}
	terms := []ir.Cond{left}
	for p.acceptKeyword("AND") {
		right, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		terms = append(terms, right)
	}
	if len(terms) == 1 {
		return terms[0], nil
	}
	return &ir.CondAnd{Terms: terms}, nil
}

var compareOps = map[string]bool{
	"=": true, "<": true, ">": true, "<=": true, ">=": true, "<>": true, "!=": true,
}

// parseComparison parses "<operand> <op> <operand>" or a parenthesized
// condition.
func (p *parser) parseComparison() (ir.Cond, error) {
	if p.acceptPunct("(") {
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind != Punct || !compareOps[t.Text] {
		return nil, p.errAt(t, "expected comparison operator, found %s", describe(t))
	}
	p.pos++
	right, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return &ir.CondCmp{Op: t.Text, Left: left, Right: right, Pos: ps(t)}, nil
}

// parseOperand parses one side of a comparison: an additive expression over
// identifiers, placeholders and literals. Identifiers inside function-call
// arguments are marked InCall (the normalizer filters them against the
// relation instead of requiring them to be attributes).
func (p *parser) parseOperand() (ir.CondOperand, error) {
	start := p.cur()
	op := ir.CondOperand{Pos: ps(start)}
	ntoks := 0
	firstPlainIdent := false
	var loneParam *ir.Param
	expectOperand := true
	for {
		t := p.cur()
		if expectOperand {
			switch {
			case t.Kind == Ident:
				if p.rawNextIsOpenParen() {
					// Function call: skip the name, record argument
					// identifiers as in-call uses.
					p.pos += 2
					ntoks += 2
					depth := 1
					for depth > 0 {
						tt := p.cur()
						if tt.Kind == EOF {
							return op, p.errAt(t, "unterminated call")
						}
						if tt.Kind == Punct {
							switch tt.Text {
							case "(":
								depth++
							case ")":
								depth--
							}
						}
						if tt.Kind == Ident {
							op.Uses = append(op.Uses, ir.IdentUse{Name: p.name(tt), InCall: true, Pos: ps(tt)})
						}
						p.pos++
						ntoks++
					}
				} else {
					op.Uses = append(op.Uses, ir.IdentUse{Name: p.name(t), Pos: ps(t)})
					if ntoks == 0 {
						firstPlainIdent = true
					}
					p.pos++
					ntoks++
				}
			case t.Kind == Param:
				if ntoks == 0 {
					pp := p.mkParam(t)
					loneParam = &pp
				} else {
					_ = p.mkParam(t) // keep anonymous-placeholder numbering stable
				}
				p.pos++
				ntoks++
			case t.Kind == Number || t.Kind == String:
				p.pos++
				ntoks++
			case t.Kind == Punct && t.Text == "(":
				p.pos++
				ntoks++
				inner, err := p.parseOperand()
				if err != nil {
					return op, err
				}
				op.Uses = append(op.Uses, inner.Uses...)
				if err := p.expectPunct(")"); err != nil {
					return op, err
				}
				ntoks++
			case t.Kind == Punct && t.Text == "-":
				p.pos++
				ntoks++
				continue // unary minus
			default:
				return op, p.errAt(t, "expected operand, found %s", describe(t))
			}
			expectOperand = false
			continue
		}
		// After an operand: continue on arithmetic operators and casts.
		if t.Kind == Punct && len(t.Text) == 1 && strings.ContainsAny(t.Text, "+-*/") {
			p.pos++
			ntoks++
			expectOperand = true
			continue
		}
		if t.Kind == Punct && t.Text == "::" {
			p.skipCast()
			ntoks++
			continue
		}
		break
	}
	op.LoneIdent = firstPlainIdent && ntoks == 1
	if ntoks == 1 {
		op.LoneParam = loneParam
	}
	return op, nil
}

// skipCast consumes a "::type" cast (the "::" token is current): the type
// name, with an optional parenthesized precision, is discarded.
func (p *parser) skipCast() {
	p.pos++ // "::"
	if t := p.cur(); t.Kind == Ident {
		p.pos++
		if p.atPunct("(") {
			p.skipBalancedParens()
		}
	}
}

// skipBalancedParens consumes a balanced "(...)" group; the opening paren is
// current. At EOF it simply returns — the caller's next expectation reports
// the error.
func (p *parser) skipBalancedParens() {
	depth := 0
	for {
		t := p.cur()
		if t.Kind == EOF {
			return
		}
		if t.Kind == Punct {
			switch t.Text {
			case "(":
				depth++
			case ")":
				depth--
			}
		}
		p.pos++
		if depth == 0 {
			return
		}
	}
}

// parseExpr scans one scalar expression — select item, SET value, VALUES
// entry, RETURNING item — recording the identifiers it mentions (call names
// excluded) and whether it is a single bare identifier or placeholder. It
// stops at a depth-0 comma, semicolon, closing paren, or any of the stop
// keywords; it never fails (the caller's next expectation reports stray
// input).
func (p *parser) parseExpr(stops ...string) ir.Expr {
	start := p.cur()
	e := ir.Expr{Pos: ps(start)}
	depth := 0
	ntoks := 0
	firstPlainIdent := false
	var loneParam *ir.Param
scan:
	for {
		t := p.cur()
		if t.Kind == EOF {
			break
		}
		if t.Kind == Ident && !t.Quoted && depth == 0 {
			for _, s := range stops {
				if strings.EqualFold(t.Text, s) {
					break scan
				}
			}
		}
		if t.Kind == Punct {
			switch t.Text {
			case "(":
				depth++
			case ")":
				if depth == 0 {
					break scan
				}
				depth--
			case ",", ";":
				if depth == 0 {
					break scan
				}
			case "::":
				p.skipCast()
				ntoks += 2 // a cast is never a bare column
				continue
			}
		}
		if t.Kind == Ident && !p.rawNextIsOpenParen() {
			e.Idents = append(e.Idents, ir.Ident{Name: p.name(t), Pos: ps(t)})
			if ntoks == 0 {
				firstPlainIdent = true
			}
		}
		if t.Kind == Param {
			pp := p.mkParam(t)
			if ntoks == 0 {
				loneParam = &pp
			}
		}
		p.pos++
		ntoks++
	}
	e.LoneIdent = firstPlainIdent && ntoks == 1
	if ntoks == 1 {
		e.LoneParam = loneParam
	}
	return e
}
