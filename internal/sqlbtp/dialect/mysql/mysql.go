// Package mysql is the MySQL / MariaDB front-end of the sqlbtp compiler.
//
// Guarantees: backtick-quoted identifiers (no case folding); "?" anonymous,
// ":name" and "@name" named placeholders (":name" and "@name" with the same
// name are the same value); "--", "#" and "/* */" comments; SELECT ... ORDER
// BY / LIMIT [offset,] count / FOR UPDATE; CREATE TABLE with
// AUTO_INCREMENT columns and trailing table options (ENGINE=, DEFAULT
// CHARSET=, ...), which are tolerated and discarded.
//
// Rejections: RETURNING in any statement — MySQL has none; model
// driver-side reads of updated rows with a "-- @reads col, ..." pragma on
// the statement instead. Also multi-row INSERT and ALTER TABLE (declare
// constraints inside CREATE TABLE). Every rejection carries line and
// column. Anonymous "?" placeholders are accepted everywhere but never
// witness dataflow between statements — use named placeholders where FK
// inference should see the connection.
package mysql

import (
	"repro/internal/sqlbtp/dialect"
	"repro/internal/sqlbtp/ir"
)

// Profile returns the MySQL dialect profile.
func Profile() *dialect.Profile {
	return &dialect.Profile{
		Name:              "mysql",
		BacktickIdent:     true,
		NamedParams:       true,
		AtParams:          true,
		QuestionParams:    true,
		ReturningErr:      `use a "-- @reads col, ..." pragma to model driver-side reads`,
		CommaLimit:        true,
		HashComments:      true,
		BlockComments:     true,
		ProgramDirectives: true,
		DDL:               true,
		TableOptions:      true,
		Types:             types,
	}
}

// Parse parses a MySQL script: CREATE TABLE statements plus programs
// introduced by "-- program Name [as Abbrev]" directives.
func Parse(src string) (*ir.Script, error) {
	return dialect.ParseScript(Profile(), src)
}

var types = map[string]bool{
	"tinyint": true, "smallint": true, "mediumint": true, "int": true,
	"integer": true, "bigint": true, "decimal": true, "numeric": true,
	"float": true, "double": true, "double precision": true, "bit": true,
	"bool": true, "boolean": true,
	"char": true, "varchar": true, "tinytext": true, "text": true,
	"mediumtext": true, "longtext": true,
	"binary": true, "varbinary": true, "tinyblob": true, "blob": true,
	"mediumblob": true, "longblob": true,
	"date": true, "time": true, "datetime": true, "timestamp": true,
	"year": true, "json": true,
}
