// Package sqlite is the SQLite front-end of the sqlbtp compiler.
//
// Guarantees: double-quote, backtick and [bracket] identifier quoting (no
// case folding); "?", "?N", ":name", "@name" and "$name" placeholders with
// SQLite's own semantics (named styles with the same name are the same
// value, "?N" matches by number, bare "?" never witnesses dataflow);
// UPDATE ... RETURNING; SELECT ... ORDER BY / LIMIT [offset,] count;
// flexible typing — any (or no) column type is accepted, as SQLite itself
// does; WITHOUT ROWID and STRICT table suffixes; "--" and "/* */" comments.
//
// Rejections: INSERT ... RETURNING (a BTP insert has no read set),
// multi-row INSERT, and ALTER TABLE (declare constraints inside CREATE
// TABLE). Every rejection carries line and column.
package sqlite

import (
	"repro/internal/sqlbtp/dialect"
	"repro/internal/sqlbtp/ir"
)

// Profile returns the SQLite dialect profile.
func Profile() *dialect.Profile {
	return &dialect.Profile{
		Name:              "sqlite",
		DoubleQuoteIdent:  true,
		BacktickIdent:     true,
		BracketIdent:      true,
		NamedParams:       true,
		AtParams:          true,
		DollarNamed:       true,
		QuestionParams:    true,
		QuestionNumbered:  true,
		Returning:         true,
		CommaLimit:        true,
		BlockComments:     true,
		ProgramDirectives: true,
		DDL:               true,
		WithoutRowid:      true,
		FlexTypes:         true,
	}
}

// Parse parses an SQLite script: CREATE TABLE statements plus programs
// introduced by "-- program Name [as Abbrev]" directives.
func Parse(src string) (*ir.Script, error) {
	return dialect.ParseScript(Profile(), src)
}
