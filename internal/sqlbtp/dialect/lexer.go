package dialect

import "strings"

// Lex tokenizes src under the profile's surface syntax. Tokens carry 1-based
// line and column positions; comments are either skipped or surfaced as
// Pragma / Label / Directive tokens. Lexing is deterministic: the same source
// always yields the same token stream.
func Lex(p *Profile, src string) ([]Token, error) {
	l := &lexer{p: p, src: src, line: 1, col: 1}
	return l.run()
}

type lexer struct {
	p    *Profile
	src  string
	i    int
	line int
	col  int
	toks []Token
}

func (l *lexer) errf(line, col int, format string, args ...any) error {
	return errf(l.p.Name, "", line, col, format, args...)
}

// advance consumes n bytes, updating line/col. The caller guarantees the
// bytes exist and contain no newline unless it advances one byte at a time.
func (l *lexer) advance(n int) {
	for k := 0; k < n; k++ {
		if l.src[l.i] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.i++
	}
}

func (l *lexer) peek(off int) byte {
	if l.i+off >= len(l.src) {
		return 0
	}
	return l.src[l.i+off]
}

func (l *lexer) emit(k Kind, text string, line, col int, quoted bool) {
	l.toks = append(l.toks, Token{Kind: k, Text: text, Line: line, Col: col, Quoted: quoted})
}

func (l *lexer) run() ([]Token, error) {
	for l.i < len(l.src) {
		c := l.src[l.i]
		line, col := l.line, l.col
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance(1)
		case c == '-' && l.peek(1) == '-':
			l.lineComment(2, line, col)
		case c == '#' && l.p.HashComments:
			l.lineComment(1, line, col)
		case c == '/' && l.peek(1) == '*' && l.p.BlockComments:
			l.advance(2)
			for {
				if l.i >= len(l.src) {
					return nil, l.errf(line, col, "unterminated block comment")
				}
				if l.src[l.i] == '*' && l.peek(1) == '/' {
					l.advance(2)
					break
				}
				l.advance(1)
			}
		case c == '\'':
			if err := l.stringLit(line, col); err != nil {
				return nil, err
			}
		case c == '"' && l.p.DoubleQuoteIdent:
			if err := l.quotedIdent('"', '"', line, col); err != nil {
				return nil, err
			}
		case c == '`' && l.p.BacktickIdent:
			if err := l.quotedIdent('`', '`', line, col); err != nil {
				return nil, err
			}
		case c == '[' && l.p.BracketIdent:
			if err := l.quotedIdent('[', ']', line, col); err != nil {
				return nil, err
			}
		case isIdentStart(c):
			start := l.i
			for l.i < len(l.src) && isIdentPart(l.src[l.i]) {
				l.advance(1)
			}
			l.emit(Ident, l.src[start:l.i], line, col, false)
		case c >= '0' && c <= '9':
			start := l.i
			for l.i < len(l.src) && (l.src[l.i] >= '0' && l.src[l.i] <= '9' || l.src[l.i] == '.') {
				l.advance(1)
			}
			l.emit(Number, l.src[start:l.i], line, col, false)
		case c == ':':
			switch {
			case l.peek(1) == ':' && l.p.DoubleColonCast:
				l.advance(2)
				l.emit(Punct, "::", line, col, false)
			case l.p.NamedParams && isIdentStart(l.peek(1)):
				l.advance(1)
				start := l.i
				for l.i < len(l.src) && isIdentPart(l.src[l.i]) {
					l.advance(1)
				}
				l.emit(Param, ":"+l.src[start:l.i], line, col, false)
			default:
				l.advance(1)
				l.emit(Punct, ":", line, col, false)
			}
		case c == '$':
			start := l.i
			switch {
			case l.p.DollarNumbered && isDigit(l.peek(1)):
				l.advance(1)
				for l.i < len(l.src) && isDigit(l.src[l.i]) {
					l.advance(1)
				}
				l.emit(Param, l.src[start:l.i], line, col, false)
			case l.p.DollarNamed && isIdentStart(l.peek(1)):
				l.advance(1)
				for l.i < len(l.src) && isIdentPart(l.src[l.i]) {
					l.advance(1)
				}
				l.emit(Param, l.src[start:l.i], line, col, false)
			default:
				return nil, l.errf(line, col, "unexpected character %q", rune(c))
			}
		case c == '?' && l.p.QuestionParams:
			start := l.i
			l.advance(1)
			if l.p.QuestionNumbered && l.i < len(l.src) && isDigit(l.src[l.i]) {
				for l.i < len(l.src) && isDigit(l.src[l.i]) {
					l.advance(1)
				}
			}
			l.emit(Param, l.src[start:l.i], line, col, false)
		case c == '@' && l.p.AtParams && isIdentPart(l.peek(1)):
			start := l.i
			l.advance(1)
			for l.i < len(l.src) && isIdentPart(l.src[l.i]) {
				l.advance(1)
			}
			l.emit(Param, l.src[start:l.i], line, col, false)
		case strings.IndexByte("(),;=+-*/.", c) >= 0:
			l.advance(1)
			l.emit(Punct, string(c), line, col, false)
		case c == '<':
			if l.peek(1) == '=' || l.peek(1) == '>' {
				op := l.src[l.i : l.i+2]
				l.advance(2)
				l.emit(Punct, op, line, col, false)
			} else {
				l.advance(1)
				l.emit(Punct, "<", line, col, false)
			}
		case c == '>':
			if l.peek(1) == '=' {
				l.advance(2)
				l.emit(Punct, ">=", line, col, false)
			} else {
				l.advance(1)
				l.emit(Punct, ">", line, col, false)
			}
		case c == '!':
			if l.peek(1) == '=' {
				l.advance(2)
				l.emit(Punct, "!=", line, col, false)
				break
			}
			return nil, l.errf(line, col, "unexpected character %q", rune(c))
		default:
			return nil, l.errf(line, col, "unexpected character %q", rune(c))
		}
	}
	l.emit(EOF, "", l.line, l.col, false)
	return l.toks, nil
}

// lineComment consumes a comment opened by `lead` marker bytes and classifies
// its body: "@..." is a pragma, "qN" a statement label, "program ..." a
// program directive (when the profile uses directives); anything else is
// discarded.
func (l *lexer) lineComment(lead int, line, col int) {
	l.advance(lead)
	start := l.i
	for l.i < len(l.src) && l.src[l.i] != '\n' {
		l.advance(1)
	}
	body := strings.TrimSpace(l.src[start:l.i])
	switch {
	case strings.HasPrefix(body, "@"):
		l.emit(Pragma, body, line, col, false)
	case isLabel(body):
		l.emit(Label, body, line, col, false)
	case l.p.ProgramDirectives && isDirective(body):
		l.emit(Directive, body, line, col, false)
	}
}

func isDirective(body string) bool {
	if len(body) < len("program") {
		return false
	}
	if !strings.EqualFold(body[:len("program")], "program") {
		return false
	}
	rest := body[len("program"):]
	return rest != "" && (rest[0] == ' ' || rest[0] == '\t')
}

func (l *lexer) stringLit(line, col int) error {
	l.advance(1)
	var b strings.Builder
	for {
		if l.i >= len(l.src) || l.src[l.i] == '\n' {
			return l.errf(line, col, "unterminated string literal")
		}
		if l.src[l.i] == '\'' {
			if l.peek(1) == '\'' { // '' escapes a quote
				b.WriteByte('\'')
				l.advance(2)
				continue
			}
			l.advance(1)
			break
		}
		b.WriteByte(l.src[l.i])
		l.advance(1)
	}
	l.emit(String, b.String(), line, col, false)
	return nil
}

// quotedIdent lexes a quoted identifier delimited by open/close. A doubled
// close delimiter escapes itself (SQL style); the identifier may not span
// lines and may not be empty.
func (l *lexer) quotedIdent(open, close byte, line, col int) error {
	l.advance(1)
	var b strings.Builder
	for {
		if l.i >= len(l.src) || l.src[l.i] == '\n' {
			return l.errf(line, col, "unterminated quoted identifier")
		}
		if l.src[l.i] == close {
			if open == close && l.peek(1) == close {
				b.WriteByte(close)
				l.advance(2)
				continue
			}
			l.advance(1)
			break
		}
		b.WriteByte(l.src[l.i])
		l.advance(1)
	}
	if b.Len() == 0 {
		return l.errf(line, col, "empty quoted identifier")
	}
	l.emit(Ident, b.String(), line, col, true)
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool { return isIdentStart(c) || c >= '0' && c <= '9' }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// isLabel reports whether s looks like a statement label "qN".
func isLabel(s string) bool {
	if len(s) < 2 || s[0] != 'q' {
		return false
	}
	for i := 1; i < len(s); i++ {
		if !isDigit(s[i]) {
			return false
		}
	}
	return true
}
