package sqlbtp

import (
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/btp"
	"repro/internal/robust"
	"repro/internal/summary"
)

// auctionSQL is the SQL of Figure 1 in this package's dialect, with the
// paper's statement labels and foreign-key annotations.
const auctionSQL = `
PROGRAM FindBids(:B, :T):
  UPDATE Buyer -- q1
  SET calls = calls + 1
  WHERE id = :B;
  SELECT bid -- q2
  FROM Bids
  WHERE bid >= :T;
  COMMIT;

PROGRAM PlaceBid(:B, :V):
  -- @fk q3 = f1(q4)
  -- @fk q3 = f1(q5)
  -- @fk q3 = f2(q6)
  UPDATE Buyer -- q3
  SET calls = calls + 1
  WHERE id = :B;
  SELECT bid INTO :C -- q4
  FROM Bids
  WHERE buyerId = :B;
  IF :C < :V THEN
    UPDATE Bids -- q5
    SET bid = :V
    WHERE buyerId = :B;
  ENDIF;
  INSERT INTO Log -- q6
  VALUES (:logId, :B, :V);
  COMMIT;
`

// TestAuctionTranslation checks that the SQL of Figure 1 translates into
// exactly the BTP statement details of Figure 2.
func TestAuctionTranslation(t *testing.T) {
	schema := benchmarks.AuctionSchema()
	programs, err := Parse(schema, auctionSQL)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(programs) != 2 {
		t.Fatalf("got %d programs, want 2", len(programs))
	}
	fb, pb := programs[0], programs[1]
	if fb.Name != "FindBids" || pb.Name != "PlaceBid" {
		t.Fatalf("program names: %s, %s", fb.Name, pb.Name)
	}

	type want struct {
		name  string
		typ   btp.StmtType
		rel   string
		read  []string
		write []string
		pread []string
	}
	check := func(p *btp.Program, wants []want) {
		t.Helper()
		stmts := p.Statements()
		if len(stmts) != len(wants) {
			t.Fatalf("%s: got %d statements, want %d", p.Name, len(stmts), len(wants))
		}
		for i, w := range wants {
			q := stmts[i]
			if q.Name != w.name || q.Type != w.typ || q.Rel != w.rel {
				t.Errorf("%s: statement %d = %s, want %s %s %s", p.Name, i, q, w.name, w.typ, w.rel)
			}
			checkSet := func(label string, got btp.OptAttrs, names []string) {
				if names == nil {
					if got.Defined {
						t.Errorf("%s/%s: %s = %s, want ⊥", p.Name, w.name, label, got)
					}
					return
				}
				want := btp.Attrs(names...)
				if !got.Defined || !got.Set.Equal(want.Set) {
					t.Errorf("%s/%s: %s = %s, want %s", p.Name, w.name, label, got, want)
				}
			}
			checkSet("ReadSet", q.ReadSet, w.read)
			checkSet("WriteSet", q.WriteSet, w.write)
			checkSet("PReadSet", q.PReadSet, w.pread)
		}
	}
	check(fb, []want{
		{"q1", btp.KeyUpd, "Buyer", []string{"calls"}, []string{"calls"}, nil},
		{"q2", btp.PredSel, "Bids", []string{"bid"}, nil, []string{"bid"}},
	})
	check(pb, []want{
		{"q3", btp.KeyUpd, "Buyer", []string{"calls"}, []string{"calls"}, nil},
		{"q4", btp.KeySel, "Bids", []string{"bid"}, nil, nil},
		{"q5", btp.KeyUpd, "Bids", []string{}, []string{"bid"}, nil},
		{"q6", btp.Ins, "Log", nil, []string{"bid", "buyerId", "id"}, nil},
	})
	// The conditional update must be an optional node: PlaceBid unfolds to
	// two LTPs.
	if n := len(btp.Unfold2(pb)); n != 2 {
		t.Errorf("PlaceBid unfolds to %d LTPs, want 2", n)
	}
	// Foreign-key annotations from the pragmas.
	if len(pb.FKs) != 3 {
		t.Fatalf("PlaceBid has %d FK annotations, want 3: %v", len(pb.FKs), pb.FKs)
	}
}

// TestAuctionSQLRobustness runs the full pipeline — SQL → BTP → summary
// graph → Algorithm 2 — and checks it reproduces the paper's Auction
// verdicts (robust with FKs, not robust without).
func TestAuctionSQLRobustness(t *testing.T) {
	schema := benchmarks.AuctionSchema()
	programs, err := Parse(schema, auctionSQL)
	if err != nil {
		t.Fatal(err)
	}
	c := robust.NewChecker(schema)
	res, err := c.Check(programs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Robust {
		t.Errorf("SQL-derived Auction should be robust under attr dep + FK; witness:\n%s", res.Witness)
	}
	st := res.Graph.Stats()
	if st.Nodes != 3 || st.Edges != 17 || st.CounterflowEdges != 1 {
		t.Errorf("SQL-derived Auction graph = %+v, want 3 nodes / 17 edges / 1 counterflow", st)
	}
	c.Setting = summary.SettingAttrDep
	res, err = c.Check(programs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Robust {
		t.Error("SQL-derived Auction should not be robust without foreign keys")
	}
}

// TestSmallBankSQL translates a SQL rendering of SmallBank and checks the
// derived BTPs produce the same maximal robust subsets as the hand-coded
// benchmark (Figure 6).
func TestSmallBankSQL(t *testing.T) {
	schema := benchmarks.SmallBankSchema()
	src := `
PROGRAM Balance(:N):
  SELECT CustomerId INTO :x FROM Account WHERE Name = :N;  -- q6
  SELECT Balance INTO :a FROM Savings WHERE CustomerId = :x; -- q7
  SELECT Balance + :a FROM Checking WHERE CustomerId = :x;   -- q8
  COMMIT;

PROGRAM DepositChecking(:N, :V):
  SELECT CustomerId INTO :x FROM Account WHERE Name = :N;  -- q9
  UPDATE Checking SET Balance = Balance + :V WHERE CustomerId = :x; -- q10
  COMMIT;

PROGRAM TransactSavings(:N, :V):
  SELECT CustomerId INTO :x FROM Account WHERE Name = :N;  -- q11
  UPDATE Savings SET Balance = Balance + :V WHERE CustomerId = :x; -- q12
  COMMIT;
`
	programs, err := Parse(schema, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(programs) != 3 {
		t.Fatalf("got %d programs", len(programs))
	}
	c := robust.NewChecker(schema)
	// {Bal, DC} and {Bal, TS} robust; {Bal, DC, TS} not (Figure 6).
	res, err := c.Check([]*btp.Program{programs[0], programs[1]})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Robust {
		t.Error("{Balance, DepositChecking} should be robust")
	}
	res, err = c.Check([]*btp.Program{programs[0], programs[2]})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Robust {
		t.Error("{Balance, TransactSavings} should be robust")
	}
	res, err = c.Check(programs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Robust {
		t.Error("{Balance, DepositChecking, TransactSavings} should not be robust")
	}
}

// TestRepeatLoop checks REPEAT/END REPEAT becomes a loop node unfolding to
// 0, 1 and 2 iterations.
func TestRepeatLoop(t *testing.T) {
	schema := benchmarks.AuctionSchema()
	src := `
PROGRAM Poll(:B):
  REPEAT
    SELECT bid FROM Bids WHERE buyerId = :B; -- q1
  END REPEAT;
  COMMIT;
`
	prog, err := ParseProgram(schema, src)
	if err != nil {
		t.Fatal(err)
	}
	ltps := btp.Unfold2(prog)
	if len(ltps) != 3 {
		t.Fatalf("loop should unfold to 3 LTPs (0, 1, 2 iterations), got %d", len(ltps))
	}
	lens := []int{len(ltps[0].Stmts), len(ltps[1].Stmts), len(ltps[2].Stmts)}
	if lens[0] != 0 || lens[1] != 1 || lens[2] != 2 {
		t.Errorf("unfolding lengths = %v, want [0 1 2]", lens)
	}
}

// TestParseErrors exercises diagnostic paths.
func TestParseErrors(t *testing.T) {
	schema := benchmarks.AuctionSchema()
	cases := []struct {
		name string
		src  string
	}{
		{"unknown relation", `PROGRAM P: SELECT x FROM Nope WHERE x = 1; COMMIT;`},
		{"unknown attribute", `PROGRAM P: SELECT nope FROM Bids WHERE bid = 1; COMMIT;`},
		{"bad fk pragma", "PROGRAM P:\n-- @fk q1 = nosuchfk(q2)\nSELECT bid FROM Bids WHERE buyerId = :B; -- q1\nSELECT bid FROM Bids WHERE buyerId = :C; -- q2\nCOMMIT;"},
		{"unterminated string", `PROGRAM P: SELECT bid FROM Bids WHERE bid = 'x; COMMIT;`},
		{"missing statement", `PROGRAM P: FROB x; COMMIT;`},
	}
	for _, tc := range cases {
		if _, err := Parse(schema, tc.src); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}
