// Package sqlbtp compiles transaction programs written in SQL into basic
// transaction programs (internal/btp) — the Appendix A translation of the
// paper, implemented as a three-stage compiler:
//
//	dialect front-end  →  shared IR  →  normalizer  →  BTP
//
// The front-ends (internal/sqlbtp/dialect and its postgres/mysql/sqlite
// subpackages) handle one dialect's surface syntax each — quoting,
// placeholder styles, RETURNING/LIMIT forms, type spellings — and lower
// into the schema-free IR of internal/sqlbtp/ir. The normalizer in this
// package resolves identifiers against the relational schema (either built
// from the submitted DDL or supplied prebuilt), makes the key- versus
// predicate-based decision, and — on the DDL path — infers foreign-key
// annotations from REFERENCES clauses and the placeholder dataflow between
// statements.
//
// Guarantees: the embedded dialect (PROGRAM headers, ":name" placeholders)
// is accepted unchanged by Parse and ParseProgram; the same logical
// transactions written in any supported dialect compile to identical BTP
// trees. A WHERE clause that is a conjunction of equality comparisons
// binding the primary-key attributes makes a statement key-based; any
// other clause makes it predicate-based with PReadSet equal to the
// attributes the condition mentions. Statements may carry the paper's
// labels as comments ("-- q1"); unlabeled statements are numbered in
// order. Explicit "-- @fk qj = f(qi)" pragmas override (and disable)
// inference for their program; "-- @reads col, ..." adds driver-side reads
// to the preceding statement.
//
// Rejections: multi-row INSERT, INSERT ... RETURNING (a BTP insert has no
// read set), subqueries and joins (one relation per statement), and ALTER
// TABLE. Every error is a *ParseError carrying dialect, program, line and
// column.
package sqlbtp

import (
	"fmt"

	"repro/internal/btp"
	"repro/internal/relschema"
	"repro/internal/sqlbtp/dialect"
	"repro/internal/sqlbtp/dialect/mysql"
	"repro/internal/sqlbtp/dialect/postgres"
	"repro/internal/sqlbtp/dialect/sqlite"
	"repro/internal/sqlbtp/ir"
)

// Parse translates embedded-dialect source into BTP programs over the given
// schema. FK annotations come only from explicit "-- @fk" pragmas; nothing
// is inferred (the schema is prebuilt, so there is no DDL to infer from).
func Parse(schema *relschema.Schema, src string) ([]*btp.Program, error) {
	script, err := dialect.ParseScript(dialect.Embedded(), src)
	if err != nil {
		return nil, err
	}
	return lowerPrograms("embedded", schema, script.Programs, nil)
}

// ParseProgram translates a single embedded-dialect program.
func ParseProgram(schema *relschema.Schema, src string) (*btp.Program, error) {
	programs, err := Parse(schema, src)
	if err != nil {
		return nil, err
	}
	if len(programs) != 1 {
		return nil, fmt.Errorf("sqlbtp: expected exactly one program, found %d", len(programs))
	}
	return programs[0], nil
}

// lex is the embedded-dialect lexer, kept as an internal entry point for
// the determinism tests.
func lex(src string) ([]dialect.Token, error) {
	return dialect.Lex(dialect.Embedded(), src)
}

// NamedSQL is one program submitted separately from the others: its name,
// optional abbreviation, and body SQL (statements only, no header).
type NamedSQL struct {
	Name   string
	Abbrev string
	SQL    string
}

// Source is one compilation request for Compile.
type Source struct {
	// Dialect selects the front-end: "postgres", "mysql", "sqlite" or
	// "embedded" (aliases like "postgresql", "pg", "mariadb", "sqlite3"
	// are accepted; empty means embedded).
	Dialect string
	// Script is a self-contained script: DDL plus programs introduced by
	// "-- program Name [as Abbrev]" directives (PROGRAM headers in the
	// embedded dialect). Mutually exclusive with DDL/Programs.
	Script string
	// DDL holds CREATE TABLE statements; Programs the per-program SQL.
	DDL      string
	Programs []NamedSQL
	// Schema, when non-nil, is used instead of building one from DDL; FK
	// inference is disabled (annotations come only from explicit pragmas).
	Schema *relschema.Schema
}

// Workload is a compiled source: the schema and the BTP programs.
type Workload struct {
	Schema   *relschema.Schema
	Programs []*btp.Program
}

// profileFor maps a dialect tag to its profile.
func profileFor(name string) (*dialect.Profile, error) {
	switch name {
	case "", "embedded":
		return dialect.Embedded(), nil
	case "postgres", "postgresql", "pg":
		return postgres.Profile(), nil
	case "mysql", "mariadb":
		return mysql.Profile(), nil
	case "sqlite", "sqlite3":
		return sqlite.Profile(), nil
	default:
		return nil, fmt.Errorf("sqlbtp: unknown dialect %q (want postgres, mysql, sqlite or embedded)", name)
	}
}

// Compile runs the full pipeline on one source: parse under the selected
// dialect, build or adopt the schema, normalize every program to BTP, and
// infer FK annotations (DDL path only; programs with explicit "-- @fk"
// pragmas keep exactly those).
func Compile(src Source) (*Workload, error) {
	prof, err := profileFor(src.Dialect)
	if err != nil {
		return nil, err
	}
	var (
		tables   []*ir.Table
		programs []*ir.Program
	)
	if src.Script != "" {
		if src.DDL != "" || len(src.Programs) > 0 {
			return nil, fmt.Errorf("sqlbtp: supply either a script or ddl+programs, not both")
		}
		script, err := dialect.ParseScript(prof, src.Script)
		if err != nil {
			return nil, err
		}
		tables, programs = script.Tables, script.Programs
	} else {
		if src.DDL != "" {
			script, err := dialect.ParseScript(prof, src.DDL)
			if err != nil {
				return nil, err
			}
			if len(script.Programs) > 0 {
				return nil, fmt.Errorf("sqlbtp: ddl must not contain programs (submit them via programs)")
			}
			tables = script.Tables
		}
		for _, np := range src.Programs {
			if np.Name == "" {
				return nil, fmt.Errorf("sqlbtp: every program needs a name")
			}
			prog, err := dialect.ParseProgramBody(prof, np.Name, np.Abbrev, np.SQL)
			if err != nil {
				return nil, err
			}
			programs = append(programs, prog)
		}
	}
	schema := src.Schema
	infer := false
	if schema == nil {
		if len(tables) == 0 {
			return nil, fmt.Errorf("sqlbtp: the %s dialect needs CREATE TABLE ddl (or a prebuilt schema)", prof.Name)
		}
		schema, err = buildSchema(prof.Name, tables)
		if err != nil {
			return nil, err
		}
		infer = true
	} else if len(tables) > 0 {
		return nil, fmt.Errorf("sqlbtp: supply either ddl or a prebuilt schema, not both")
	}
	var inferTables []*ir.Table
	if infer {
		inferTables = tables
	}
	btpProgs, err := lowerPrograms(prof.Name, schema, programs, inferTables)
	if err != nil {
		return nil, err
	}
	return &Workload{Schema: schema, Programs: btpProgs}, nil
}
