-- SmallBank (Figure 10 / Appendix E.1) in SQLite syntax. SQLite preserves
-- identifier case and accepts any of "double quotes", `backticks` or
-- [brackets] as quoting; typing is flexible. Inputs are ?N placeholders,
-- captured values are :name placeholders.

CREATE TABLE Account (
  Name       TEXT PRIMARY KEY,
  CustomerId INTEGER NOT NULL,
  CONSTRAINT fS FOREIGN KEY (CustomerId) REFERENCES Savings (CustomerId),
  CONSTRAINT fC FOREIGN KEY (CustomerId) REFERENCES Checking (CustomerId)
) WITHOUT ROWID;

CREATE TABLE Savings (
  CustomerId INTEGER PRIMARY KEY,
  Balance    REAL NOT NULL
);

CREATE TABLE [Checking] (
  CustomerId INTEGER PRIMARY KEY,
  `Balance`
);

-- program Amalgamate as Am
SELECT CustomerId INTO :c1 FROM Account WHERE Name = ?1;  -- q1
SELECT CustomerId INTO :c2 FROM Account WHERE Name = ?2;  -- q2
UPDATE Savings SET Balance = 0 WHERE CustomerId = :c1 RETURNING Balance INTO :sv;     -- q3
UPDATE [Checking] SET Balance = 0 WHERE CustomerId = :c1 RETURNING Balance INTO :cv;  -- q4
UPDATE Checking SET Balance = Balance + :sv + :cv WHERE CustomerId = :c2;  -- q5
COMMIT;

-- program Balance as Bal
SELECT CustomerId INTO :c FROM Account WHERE Name = ?1;      -- q6
SELECT Balance INTO :sb FROM Savings WHERE CustomerId = :c;   -- q7
SELECT Balance INTO :cb FROM Checking WHERE CustomerId = :c;  -- q8
COMMIT;

-- program DepositChecking as DC
SELECT CustomerId INTO :c FROM Account WHERE Name = ?1;  -- q9
UPDATE Checking SET Balance = Balance + ?2 WHERE CustomerId = :c;  -- q10
COMMIT;

-- program TransactSavings as TS
SELECT CustomerId INTO :c FROM Account WHERE Name = ?1;  -- q11
UPDATE Savings SET Balance = Balance + ?2 WHERE CustomerId = :c;  -- q12
COMMIT;

-- program WriteCheck as WC
SELECT CustomerId INTO :c FROM "Account" WHERE Name = ?1;    -- q13
SELECT Balance INTO :sb FROM Savings WHERE CustomerId = :c;   -- q14
SELECT Balance INTO :cb FROM Checking WHERE CustomerId = :c;  -- q15
UPDATE Checking SET Balance = ?2 WHERE CustomerId = :c;       -- q16
COMMIT;
