-- Auction (Section 2, Figures 1 and 2) in SQLite syntax. Inputs are ?N
-- placeholders; the current bid is captured with RETURNING-style INTO.
-- Column types are flexible and f1/f2 are column-level REFERENCES.

CREATE TABLE Buyer (
  id    INTEGER PRIMARY KEY,
  calls INTEGER NOT NULL
);

CREATE TABLE Bids (
  buyerId INTEGER PRIMARY KEY CONSTRAINT f1 REFERENCES Buyer (id),
  bid     REAL NOT NULL
);

CREATE TABLE Log (
  id      INTEGER PRIMARY KEY,
  buyerId INTEGER NOT NULL CONSTRAINT f2 REFERENCES Buyer,
  bid     REAL NOT NULL
);

-- program FindBids as FB
UPDATE Buyer SET calls = calls + 1 WHERE id = ?1;  -- q1
SELECT bid FROM Bids WHERE bid > ?2;               -- q2
COMMIT;

-- program PlaceBid as PB
UPDATE Buyer SET calls = calls + 1 WHERE id = ?1;      -- q3
SELECT bid INTO :curbid FROM Bids WHERE buyerId = ?1;  -- q4
IF ?2 > :curbid THEN
  UPDATE Bids SET bid = ?2 WHERE buyerId = ?1;         -- q5
ENDIF;
INSERT INTO Log VALUES (?3, ?1, ?2);                   -- q6
COMMIT;
