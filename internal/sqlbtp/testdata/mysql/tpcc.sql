# TPC-C (Figure 17 / Appendix E.2) in MySQL syntax. Identifier case is
# preserved without quoting; inputs are :name placeholders and captured
# values are @name session variables. MySQL has no RETURNING clause, so the
# attributes an UPDATE reads back are declared with -- @reads pragmas.

CREATE TABLE Warehouse (
  w_id       INT PRIMARY KEY,
  w_name     VARCHAR(10),
  w_street_1 VARCHAR(20),
  w_street_2 VARCHAR(20),
  w_city     VARCHAR(20),
  w_state    CHAR(2),
  w_zip      CHAR(9),
  w_tax      DECIMAL(4, 4),
  w_ytd      DECIMAL(12, 2)
) ENGINE=InnoDB;

CREATE TABLE District (
  d_id        INT,
  d_w_id      INT,
  d_name      VARCHAR(10),
  d_street_1  VARCHAR(20),
  d_street_2  VARCHAR(20),
  d_city      VARCHAR(20),
  d_state     CHAR(2),
  d_zip       CHAR(9),
  d_tax       DECIMAL(4, 4),
  d_ytd       DECIMAL(12, 2),
  d_next_o_id INT,
  PRIMARY KEY (d_id, d_w_id),
  CONSTRAINT f1 FOREIGN KEY (d_w_id) REFERENCES Warehouse (w_id)
) ENGINE=InnoDB;

CREATE TABLE Customer (
  c_id           INT,
  c_d_id         INT,
  c_w_id         INT,
  c_first        VARCHAR(16),
  c_middle       CHAR(2),
  c_last         VARCHAR(16),
  c_street_1     VARCHAR(20),
  c_street_2     VARCHAR(20),
  c_city         VARCHAR(20),
  c_state        CHAR(2),
  c_zip          CHAR(9),
  c_phone        CHAR(16),
  c_since        DATETIME,
  c_credit       CHAR(2),
  c_credit_lim   DECIMAL(12, 2),
  c_discount     DECIMAL(4, 4),
  c_balance      DECIMAL(12, 2),
  c_ytd_payment  DECIMAL(12, 2),
  c_payment_cnt  INT,
  c_delivery_cnt INT,
  c_data         TEXT,
  PRIMARY KEY (c_id, c_d_id, c_w_id),
  CONSTRAINT f2 FOREIGN KEY (c_d_id, c_w_id) REFERENCES District (d_id, d_w_id)
) ENGINE=InnoDB;

CREATE TABLE History (
  h_c_id   INT,
  h_c_d_id INT,
  h_c_w_id INT,
  h_d_id   INT,
  h_w_id   INT,
  h_date   DATETIME,
  h_amount DECIMAL(6, 2),
  h_data   VARCHAR(24),
  PRIMARY KEY (h_c_id, h_c_d_id, h_c_w_id, h_d_id, h_w_id, h_date),
  CONSTRAINT f3 FOREIGN KEY (h_c_id, h_c_d_id, h_c_w_id) REFERENCES Customer (c_id, c_d_id, c_w_id),
  CONSTRAINT f4 FOREIGN KEY (h_d_id, h_w_id) REFERENCES District (d_id, d_w_id)
) ENGINE=InnoDB;

CREATE TABLE New_Order (
  no_o_id INT,
  no_d_id INT,
  no_w_id INT,
  PRIMARY KEY (no_o_id, no_d_id, no_w_id),
  CONSTRAINT f5 FOREIGN KEY (no_o_id, no_d_id, no_w_id) REFERENCES Orders (o_id, o_d_id, o_w_id)
) ENGINE=InnoDB;

CREATE TABLE Orders (
  o_id         INT,
  o_d_id       INT,
  o_w_id       INT,
  o_c_id       INT,
  o_entry_id   DATETIME,
  o_carrier_id INT,
  o_ol_cnt     INT,
  o_all_local  INT,
  PRIMARY KEY (o_id, o_d_id, o_w_id),
  CONSTRAINT f6 FOREIGN KEY (o_d_id, o_w_id) REFERENCES District (d_id, d_w_id),
  CONSTRAINT f7 FOREIGN KEY (o_c_id, o_d_id, o_w_id) REFERENCES Customer (c_id, c_d_id, c_w_id)
) ENGINE=InnoDB;

CREATE TABLE Order_Line (
  ol_o_id        INT,
  ol_d_id        INT,
  ol_w_id        INT,
  ol_number      INT,
  ol_i_id        INT,
  ol_supply_w_id INT,
  ol_delivery_d  DATETIME,
  ol_quantity    INT,
  ol_amount      DECIMAL(6, 2),
  ol_dist_info   CHAR(24),
  PRIMARY KEY (ol_o_id, ol_d_id, ol_w_id, ol_number),
  CONSTRAINT f8 FOREIGN KEY (ol_o_id, ol_d_id, ol_w_id) REFERENCES Orders (o_id, o_d_id, o_w_id),
  CONSTRAINT f9 FOREIGN KEY (ol_i_id) REFERENCES Item (i_id),
  CONSTRAINT f10 FOREIGN KEY (ol_supply_w_id) REFERENCES Warehouse (w_id)
) ENGINE=InnoDB;

CREATE TABLE Item (
  i_id    INT PRIMARY KEY,
  i_im_id INT,
  i_name  VARCHAR(24),
  i_price DECIMAL(5, 2),
  i_data  VARCHAR(50)
) ENGINE=InnoDB;

CREATE TABLE Stock (
  s_i_id       INT,
  s_w_id       INT,
  s_quantity   INT,
  s_dist_01    CHAR(24),
  s_dist_02    CHAR(24),
  s_dist_03    CHAR(24),
  s_dist_04    CHAR(24),
  s_dist_05    CHAR(24),
  s_dist_06    CHAR(24),
  s_dist_07    CHAR(24),
  s_dist_08    CHAR(24),
  s_dist_09    CHAR(24),
  s_dist_10    CHAR(24),
  s_ytd        DECIMAL(8, 0),
  s_order_cnt  INT,
  s_remote_cnt INT,
  s_data       VARCHAR(50),
  PRIMARY KEY (s_i_id, s_w_id),
  CONSTRAINT f11 FOREIGN KEY (s_i_id) REFERENCES Item (i_id),
  CONSTRAINT f12 FOREIGN KEY (s_w_id) REFERENCES Warehouse (w_id)
) ENGINE=InnoDB;

-- program Delivery as Del
# Inputs: :d = d_id, :w = w_id, :carrier = carrier id, :ddate = delivery date.
REPEAT
  SELECT no_o_id INTO @o FROM New_Order
    WHERE no_d_id = :d AND no_w_id = :w ORDER BY no_o_id LIMIT 1;  -- q1
  DELETE FROM New_Order
    WHERE no_o_id = @o AND no_d_id = :d AND no_w_id = :w;  -- q2
  SELECT o_c_id INTO @c FROM Orders
    WHERE o_id = @o AND o_d_id = :d AND o_w_id = :w;  -- q3
  UPDATE Orders SET o_carrier_id = :carrier
    WHERE o_id = @o AND o_d_id = :d AND o_w_id = :w;  -- q4
  UPDATE Order_Line SET ol_delivery_d = :ddate
    WHERE ol_o_id = @o AND ol_d_id = :d AND ol_w_id = :w;  -- q5
  SELECT sum(ol_amount) INTO @amount FROM Order_Line
    WHERE ol_o_id = @o AND ol_d_id = :d AND ol_w_id = :w;  -- q6
  UPDATE Customer
    SET c_balance = c_balance + @amount, c_delivery_cnt = c_delivery_cnt + 1
    WHERE c_id = @c AND c_d_id = :d AND c_w_id = :w;  -- q7
END REPEAT;
COMMIT;

-- program NewOrder as NO
# Inputs: :c = c_id, :d = d_id, :w = w_id, :entry = entry date,
# :olcnt = ol_cnt, :alllocal = all_local; per line item :i, :qty, :number,
# :amount, :distinfo. The new order id is captured into @o.
SELECT c_credit, c_discount, c_last FROM Customer
  WHERE c_id = :c AND c_d_id = :d AND c_w_id = :w;  -- q8
SELECT w_tax FROM Warehouse WHERE w_id = :w;  -- q9
UPDATE District SET d_next_o_id = d_next_o_id + 1
  WHERE d_id = :d AND d_w_id = :w;  -- q10
-- @reads d_next_o_id, d_tax
INSERT INTO Orders (o_id, o_d_id, o_w_id, o_c_id, o_entry_id, o_ol_cnt, o_all_local)
  VALUES (@o, :d, :w, :c, :entry, :olcnt, :alllocal);  -- q11
INSERT INTO New_Order VALUES (@o, :d, :w);  -- q12
REPEAT
  SELECT i_name, i_price, i_data FROM Item WHERE i_id = :i;  -- q13
  UPDATE Stock
    SET s_quantity = s_quantity - :qty, s_ytd = s_ytd + :qty,
        s_order_cnt = s_order_cnt + 1, s_remote_cnt = s_remote_cnt + 1
    WHERE s_i_id = :i AND s_w_id = :w;  -- q14
  -- @reads s_dist_01, s_dist_02, s_dist_03, s_dist_04, s_dist_05,
  -- @reads s_dist_06, s_dist_07, s_dist_08, s_dist_09, s_dist_10, s_data
  INSERT INTO Order_Line (ol_o_id, ol_d_id, ol_w_id, ol_number, ol_i_id,
                          ol_supply_w_id, ol_quantity, ol_amount, ol_dist_info)
    VALUES (@o, :d, :w, :number, :i, :w, :qty, :amount, :distinfo);  -- q15
END REPEAT;
COMMIT;

-- program OrderStatus as OS
# Inputs: :last = c_last, :d = d_id, :w = w_id; @c = c_id (direct lookup).
IF @byname THEN
  SELECT c_id, c_first, c_middle, c_balance INTO @c, @first, @middle, @bal
    FROM Customer WHERE c_d_id = :d AND c_w_id = :w AND c_last = :last;  -- q16
ELSE
  SELECT c_first, c_middle, c_last, c_balance FROM Customer
    WHERE c_id = @c AND c_d_id = :d AND c_w_id = :w;  -- q17
END IF;
SELECT o_id, o_entry_id, o_carrier_id INTO @o, @entry, @carrier FROM Orders
  WHERE o_c_id = @c AND o_d_id = :d AND o_w_id = :w
  ORDER BY o_id DESC LIMIT 1;  -- q18
SELECT ol_i_id, ol_supply_w_id, ol_quantity, ol_amount, ol_delivery_d
  FROM Order_Line
  WHERE ol_o_id = @o AND ol_d_id = :d AND ol_w_id = :w;  -- q19
COMMIT;

-- program Payment as Pay
# Inputs: :w = w_id, :d = d_id, :amount = amount. As in the PostgreSQL
# corpus, Figure 17's exact annotation set is pinned with explicit pragmas,
# which disable inference for this program.
UPDATE Warehouse SET w_ytd = w_ytd + :amount WHERE w_id = :w;  -- q20
-- @reads w_name, w_street_1, w_street_2, w_city, w_state, w_zip
UPDATE District SET d_ytd = d_ytd + :amount
  WHERE d_id = :d AND d_w_id = :w;  -- q21
-- @reads d_name, d_street_1, d_street_2, d_city, d_state, d_zip
IF @byname THEN
  SELECT c_id INTO @c FROM Customer
    WHERE c_d_id = :d AND c_w_id = :w AND c_last = :last;  -- q22
END IF;
UPDATE Customer
  SET c_balance = c_balance - :amount, c_ytd_payment = c_ytd_payment + :amount,
      c_payment_cnt = :pcnt
  WHERE c_id = @c AND c_d_id = :d AND c_w_id = :w;  -- q23
-- @reads c_first, c_middle, c_last, c_street_1, c_street_2, c_city,
-- @reads c_state, c_zip, c_phone, c_since, c_credit, c_credit_lim, c_discount
IF @badcredit THEN
  SELECT c_data INTO @cdata FROM Customer
    WHERE c_id = @c AND c_d_id = :d AND c_w_id = :w;  -- q24
  UPDATE Customer SET c_data = @newdata
    WHERE c_id = @c AND c_d_id = :d AND c_w_id = :w;  -- q25
END IF;
INSERT INTO History VALUES (@c, :d, :w, :d, :w, @hdate, :amount, @hdata);  -- q26
-- @fk q20 = f1(q21)
-- @fk q21 = f2(q22)
-- @fk q21 = f2(q23)
-- @fk q21 = f2(q24)
-- @fk q21 = f2(q25)
-- @fk q23 = f3(q26)
-- @fk q25 = f3(q26)
-- @fk q21 = f4(q26)
COMMIT;

-- program StockLevel as SL
# Inputs: :d = d_id, :w = w_id, :threshold = quantity threshold.
SELECT d_next_o_id INTO @o FROM District WHERE d_id = :d AND d_w_id = :w;  -- q27
SELECT ol_i_id FROM Order_Line
  WHERE ol_w_id = :w AND ol_d_id = :d AND ol_o_id >= @o - 20;  -- q28
SELECT s_i_id FROM Stock WHERE s_w_id = :w AND s_quantity < :threshold;  -- q29
COMMIT;
