# Auction (Section 2, Figures 1 and 2) in MySQL syntax. Identifier case is
# preserved without quoting; inputs are :name placeholders and the current
# bid is captured into a @curbid session variable.

CREATE TABLE Buyer (
  id    INT PRIMARY KEY,
  calls INT NOT NULL
) ENGINE=InnoDB;

CREATE TABLE Bids (
  buyerId INT PRIMARY KEY,
  bid     DECIMAL(10, 2) NOT NULL,
  CONSTRAINT f1 FOREIGN KEY (buyerId) REFERENCES Buyer (id)
) ENGINE=InnoDB;

CREATE TABLE Log (
  id      INT PRIMARY KEY,
  buyerId INT NOT NULL,
  bid     DECIMAL(10, 2) NOT NULL,
  CONSTRAINT f2 FOREIGN KEY (buyerId) REFERENCES Buyer (id)
) ENGINE=InnoDB;

-- program FindBids as FB
UPDATE Buyer SET calls = calls + 1 WHERE id = :b;  -- q1
SELECT bid FROM Bids WHERE bid > :amount;          -- q2
COMMIT;

-- program PlaceBid as PB
UPDATE Buyer SET calls = calls + 1 WHERE id = :b;         -- q3
SELECT bid INTO @curbid FROM Bids WHERE buyerId = :b;     -- q4
IF :amount > @curbid THEN
  UPDATE Bids SET bid = :amount WHERE buyerId = :b;       -- q5
END IF;
INSERT INTO Log VALUES (:l, :b, :amount);                 -- q6
COMMIT;
