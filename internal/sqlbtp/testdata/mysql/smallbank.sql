# SmallBank (Figure 10 / Appendix E.1) in MySQL syntax. MySQL preserves the
# case of unquoted identifiers, so the schema names appear verbatim. Inputs
# are :name placeholders, captured values are @name session variables.
# MySQL has no RETURNING: the driver-side re-read of an updated balance is
# modeled with a "-- @reads" pragma instead.

CREATE TABLE Account (
  Name       VARCHAR(64) PRIMARY KEY,
  CustomerId INT NOT NULL,
  CONSTRAINT fS FOREIGN KEY (CustomerId) REFERENCES Savings (CustomerId),
  CONSTRAINT fC FOREIGN KEY (CustomerId) REFERENCES Checking (CustomerId)
) ENGINE=InnoDB DEFAULT CHARSET=utf8mb4;

CREATE TABLE Savings (
  CustomerId INT PRIMARY KEY,
  Balance    DECIMAL(10, 2) NOT NULL
) ENGINE=InnoDB;

CREATE TABLE `Checking` (
  CustomerId INT PRIMARY KEY,
  Balance    DECIMAL(10, 2) NOT NULL
) ENGINE=InnoDB;

-- program Amalgamate as Am
SELECT CustomerId INTO @c1 FROM Account WHERE Name = :name1;  -- q1
SELECT CustomerId INTO @c2 FROM Account WHERE Name = :name2;  -- q2
UPDATE Savings SET Balance = 0 WHERE CustomerId = @c1;   -- q3
-- @reads Balance
UPDATE `Checking` SET Balance = 0 WHERE CustomerId = @c1;  -- q4
-- @reads Balance
UPDATE Checking SET Balance = Balance + @sv + @cv WHERE CustomerId = @c2;  -- q5
COMMIT;

-- program Balance as Bal
SELECT CustomerId INTO @c FROM Account WHERE Name = :name;      -- q6
SELECT Balance INTO @sb FROM Savings WHERE CustomerId = @c;   -- q7
SELECT Balance INTO @cb FROM Checking WHERE CustomerId = @c;  -- q8
COMMIT;

-- program DepositChecking as DC
SELECT CustomerId INTO @c FROM Account WHERE Name = :name;  -- q9
UPDATE Checking SET Balance = Balance + :amount WHERE CustomerId = @c;  -- q10
COMMIT;

-- program TransactSavings as TS
SELECT CustomerId INTO @c FROM Account WHERE Name = :name;  -- q11
UPDATE Savings SET Balance = Balance + :amount WHERE CustomerId = @c;  -- q12
COMMIT;

-- program WriteCheck as WC
SELECT CustomerId INTO @c FROM Account WHERE Name = :name;     -- q13
SELECT Balance INTO @sb FROM Savings WHERE CustomerId = @c;    -- q14
SELECT Balance INTO @cb FROM Checking WHERE CustomerId = @c;   -- q15
UPDATE Checking SET Balance = :amount WHERE CustomerId = @c;   -- q16
COMMIT;
