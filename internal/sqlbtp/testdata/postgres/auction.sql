-- Auction (Section 2, Figures 1 and 2) in PostgreSQL syntax. The schema
-- names are mixed-case, so every identifier that carries upper case is
-- double-quoted; f1 and f2 are declared as column-level REFERENCES
-- constraints and the program annotations q3 = f1(q4), q3 = f1(q5),
-- q3 = f2(q6) are inferred from the placeholder dataflow.

CREATE TABLE "Buyer" (
  id    integer PRIMARY KEY,
  calls integer NOT NULL
);

CREATE TABLE "Bids" (
  "buyerId" integer PRIMARY KEY CONSTRAINT f1 REFERENCES "Buyer" (id),
  bid       numeric(10, 2) NOT NULL
);

CREATE TABLE "Log" (
  id        integer PRIMARY KEY,
  "buyerId" integer NOT NULL CONSTRAINT f2 REFERENCES "Buyer" (id),
  bid       numeric(10, 2) NOT NULL
);

-- program FindBids as FB
UPDATE "Buyer" SET calls = calls + 1 WHERE id = $1;  -- q1
SELECT bid FROM "Bids" WHERE bid > $2;               -- q2
COMMIT;

-- program PlaceBid as PB
UPDATE "Buyer" SET calls = calls + 1 WHERE id = $1;            -- q3
SELECT bid INTO :curbid FROM "Bids" WHERE "buyerId" = $1;      -- q4
IF $2 > :curbid THEN
  UPDATE "Bids" SET bid = $2 WHERE "buyerId" = $1;             -- q5
ENDIF;
INSERT INTO "Log" VALUES ($3, $1, $2);                         -- q6
COMMIT;
