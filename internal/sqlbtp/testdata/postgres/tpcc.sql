-- TPC-C (Figure 17 / Appendix E.2) in PostgreSQL syntax. Table names are
-- mixed-case and therefore double-quoted; column names are lower-case and
-- appear unquoted (PostgreSQL folds them to themselves). Inputs are $n
-- placeholders, captured values are :name placeholders. All foreign-key
-- annotations except Payment's are inferred from the f1-f12 REFERENCES
-- constraints and the placeholder dataflow; Payment pins its own with
-- explicit pragmas (see the note there).

CREATE TABLE "Warehouse" (
  w_id       integer PRIMARY KEY,
  w_name     varchar(10),
  w_street_1 varchar(20),
  w_street_2 varchar(20),
  w_city     varchar(20),
  w_state    char(2),
  w_zip      char(9),
  w_tax      numeric(4, 4),
  w_ytd      numeric(12, 2)
);

CREATE TABLE "District" (
  d_id        integer,
  d_w_id      integer,
  d_name      varchar(10),
  d_street_1  varchar(20),
  d_street_2  varchar(20),
  d_city      varchar(20),
  d_state     char(2),
  d_zip       char(9),
  d_tax       numeric(4, 4),
  d_ytd       numeric(12, 2),
  d_next_o_id integer,
  PRIMARY KEY (d_id, d_w_id),
  CONSTRAINT f1 FOREIGN KEY (d_w_id) REFERENCES "Warehouse" (w_id)
);

CREATE TABLE "Customer" (
  c_id           integer,
  c_d_id         integer,
  c_w_id         integer,
  c_first        varchar(16),
  c_middle       char(2),
  c_last         varchar(16),
  c_street_1     varchar(20),
  c_street_2     varchar(20),
  c_city         varchar(20),
  c_state        char(2),
  c_zip          char(9),
  c_phone        char(16),
  c_since        timestamp,
  c_credit       char(2),
  c_credit_lim   numeric(12, 2),
  c_discount     numeric(4, 4),
  c_balance      numeric(12, 2),
  c_ytd_payment  numeric(12, 2),
  c_payment_cnt  integer,
  c_delivery_cnt integer,
  c_data         text,
  PRIMARY KEY (c_id, c_d_id, c_w_id),
  CONSTRAINT f2 FOREIGN KEY (c_d_id, c_w_id) REFERENCES "District" (d_id, d_w_id)
);

CREATE TABLE "History" (
  h_c_id   integer,
  h_c_d_id integer,
  h_c_w_id integer,
  h_d_id   integer,
  h_w_id   integer,
  h_date   timestamp,
  h_amount numeric(6, 2),
  h_data   varchar(24),
  PRIMARY KEY (h_c_id, h_c_d_id, h_c_w_id, h_d_id, h_w_id, h_date),
  CONSTRAINT f3 FOREIGN KEY (h_c_id, h_c_d_id, h_c_w_id) REFERENCES "Customer" (c_id, c_d_id, c_w_id),
  CONSTRAINT f4 FOREIGN KEY (h_d_id, h_w_id) REFERENCES "District" (d_id, d_w_id)
);

CREATE TABLE "New_Order" (
  no_o_id integer,
  no_d_id integer,
  no_w_id integer,
  PRIMARY KEY (no_o_id, no_d_id, no_w_id),
  CONSTRAINT f5 FOREIGN KEY (no_o_id, no_d_id, no_w_id) REFERENCES "Orders" (o_id, o_d_id, o_w_id)
);

CREATE TABLE "Orders" (
  o_id         integer,
  o_d_id       integer,
  o_w_id       integer,
  o_c_id       integer,
  o_entry_id   timestamp,
  o_carrier_id integer,
  o_ol_cnt     integer,
  o_all_local  integer,
  PRIMARY KEY (o_id, o_d_id, o_w_id),
  CONSTRAINT f6 FOREIGN KEY (o_d_id, o_w_id) REFERENCES "District" (d_id, d_w_id),
  CONSTRAINT f7 FOREIGN KEY (o_c_id, o_d_id, o_w_id) REFERENCES "Customer" (c_id, c_d_id, c_w_id)
);

CREATE TABLE "Order_Line" (
  ol_o_id        integer,
  ol_d_id        integer,
  ol_w_id        integer,
  ol_number      integer,
  ol_i_id        integer,
  ol_supply_w_id integer,
  ol_delivery_d  timestamp,
  ol_quantity    integer,
  ol_amount      numeric(6, 2),
  ol_dist_info   char(24),
  PRIMARY KEY (ol_o_id, ol_d_id, ol_w_id, ol_number),
  CONSTRAINT f8 FOREIGN KEY (ol_o_id, ol_d_id, ol_w_id) REFERENCES "Orders" (o_id, o_d_id, o_w_id),
  CONSTRAINT f9 FOREIGN KEY (ol_i_id) REFERENCES "Item" (i_id),
  CONSTRAINT f10 FOREIGN KEY (ol_supply_w_id) REFERENCES "Warehouse" (w_id)
);

CREATE TABLE "Item" (
  i_id    integer PRIMARY KEY,
  i_im_id integer,
  i_name  varchar(24),
  i_price numeric(5, 2),
  i_data  varchar(50)
);

CREATE TABLE "Stock" (
  s_i_id       integer,
  s_w_id       integer,
  s_quantity   integer,
  s_dist_01    char(24),
  s_dist_02    char(24),
  s_dist_03    char(24),
  s_dist_04    char(24),
  s_dist_05    char(24),
  s_dist_06    char(24),
  s_dist_07    char(24),
  s_dist_08    char(24),
  s_dist_09    char(24),
  s_dist_10    char(24),
  s_ytd        numeric(8, 0),
  s_order_cnt  integer,
  s_remote_cnt integer,
  s_data       varchar(50),
  PRIMARY KEY (s_i_id, s_w_id),
  CONSTRAINT f11 FOREIGN KEY (s_i_id) REFERENCES "Item" (i_id),
  CONSTRAINT f12 FOREIGN KEY (s_w_id) REFERENCES "Warehouse" (w_id)
);

-- program Delivery as Del
-- Inputs: $1 = d_id, $2 = w_id, $3 = carrier id, $4 = delivery date.
REPEAT
  SELECT no_o_id INTO :o FROM "New_Order"
    WHERE no_d_id = $1 AND no_w_id = $2 ORDER BY no_o_id LIMIT 1;  -- q1
  DELETE FROM "New_Order"
    WHERE no_o_id = :o AND no_d_id = $1 AND no_w_id = $2;  -- q2
  SELECT o_c_id INTO :c FROM "Orders"
    WHERE o_id = :o AND o_d_id = $1 AND o_w_id = $2;  -- q3
  UPDATE "Orders" SET o_carrier_id = $3
    WHERE o_id = :o AND o_d_id = $1 AND o_w_id = $2;  -- q4
  UPDATE "Order_Line" SET ol_delivery_d = $4
    WHERE ol_o_id = :o AND ol_d_id = $1 AND ol_w_id = $2;  -- q5
  SELECT sum(ol_amount) INTO :amount FROM "Order_Line"
    WHERE ol_o_id = :o AND ol_d_id = $1 AND ol_w_id = $2;  -- q6
  UPDATE "Customer"
    SET c_balance = c_balance + :amount, c_delivery_cnt = c_delivery_cnt + 1
    WHERE c_id = :c AND c_d_id = $1 AND c_w_id = $2;  -- q7
END REPEAT;
COMMIT;

-- program NewOrder as NO
-- Inputs: $1 = c_id, $2 = d_id, $3 = w_id, $4 = entry date, $5 = ol_cnt,
-- $6 = all_local; per line item :i, :qty, :number, :amount, :distinfo.
SELECT c_credit, c_discount, c_last FROM "Customer"
  WHERE c_id = $1 AND c_d_id = $2 AND c_w_id = $3;  -- q8
SELECT w_tax FROM "Warehouse" WHERE w_id = $3;  -- q9
UPDATE "District" SET d_next_o_id = d_next_o_id + 1
  WHERE d_id = $2 AND d_w_id = $3
  RETURNING d_next_o_id, d_tax INTO :o, :dtax;  -- q10
INSERT INTO "Orders" (o_id, o_d_id, o_w_id, o_c_id, o_entry_id, o_ol_cnt, o_all_local)
  VALUES (:o, $2, $3, $1, $4, $5, $6);  -- q11
INSERT INTO "New_Order" VALUES (:o, $2, $3);  -- q12
REPEAT
  SELECT i_name, i_price, i_data FROM "Item" WHERE i_id = :i;  -- q13
  UPDATE "Stock"
    SET s_quantity = s_quantity - :qty, s_ytd = s_ytd + :qty,
        s_order_cnt = s_order_cnt + 1, s_remote_cnt = s_remote_cnt + 1
    WHERE s_i_id = :i AND s_w_id = $3
    RETURNING s_dist_01, s_dist_02, s_dist_03, s_dist_04, s_dist_05,
              s_dist_06, s_dist_07, s_dist_08, s_dist_09, s_dist_10, s_data
    INTO :d01, :d02, :d03, :d04, :d05, :d06, :d07, :d08, :d09, :d10, :sdata;  -- q14
  INSERT INTO "Order_Line" (ol_o_id, ol_d_id, ol_w_id, ol_number, ol_i_id,
                            ol_supply_w_id, ol_quantity, ol_amount, ol_dist_info)
    VALUES (:o, $2, $3, :number, :i, $3, :qty, :amount, :distinfo);  -- q15
END REPEAT;
COMMIT;

-- program OrderStatus as OS
-- Inputs: $1 = c_last, $2 = d_id, $3 = w_id, :c = c_id (direct lookup).
IF :byname THEN
  SELECT c_id, c_first, c_middle, c_balance INTO :c, :first, :middle, :bal
    FROM "Customer" WHERE c_d_id = $2 AND c_w_id = $3 AND c_last = $1;  -- q16
ELSE
  SELECT c_first, c_middle, c_last, c_balance FROM "Customer"
    WHERE c_id = :c AND c_d_id = $2 AND c_w_id = $3;  -- q17
ENDIF;
SELECT o_id, o_entry_id, o_carrier_id INTO :o, :entry, :carrier FROM "Orders"
  WHERE o_c_id = :c AND o_d_id = $2 AND o_w_id = $3
  ORDER BY o_id DESC LIMIT 1;  -- q18
SELECT ol_i_id, ol_supply_w_id, ol_quantity, ol_amount, ol_delivery_d
  FROM "Order_Line"
  WHERE ol_o_id = :o AND ol_d_id = $2 AND ol_w_id = $3;  -- q19
COMMIT;

-- program Payment as Pay
-- Inputs: $1 = w_id, $2 = d_id, $3 = amount. Inference would tie the
-- customer selected by last name (q22) to the same tuple as q23-q25 only
-- through the captured :c, which also witnesses a spurious History link;
-- Figure 17's exact annotation set is pinned with explicit pragmas, which
-- disable inference for this program.
UPDATE "Warehouse" SET w_ytd = w_ytd + $3 WHERE w_id = $1
  RETURNING w_name, w_street_1, w_street_2, w_city, w_state, w_zip
  INTO :wname, :wstreet1, :wstreet2, :wcity, :wstate, :wzip;  -- q20
UPDATE "District" SET d_ytd = d_ytd + $3 WHERE d_id = $2 AND d_w_id = $1
  RETURNING d_name, d_street_1, d_street_2, d_city, d_state, d_zip
  INTO :dname, :dstreet1, :dstreet2, :dcity, :dstate, :dzip;  -- q21
IF :byname THEN
  SELECT c_id INTO :c FROM "Customer"
    WHERE c_d_id = $2 AND c_w_id = $1 AND c_last = :last;  -- q22
ENDIF;
UPDATE "Customer"
  SET c_balance = c_balance - $3, c_ytd_payment = c_ytd_payment + $3,
      c_payment_cnt = :pcnt
  WHERE c_id = :c AND c_d_id = $2 AND c_w_id = $1
  RETURNING c_first, c_middle, c_last, c_street_1, c_street_2, c_city,
            c_state, c_zip, c_phone, c_since, c_credit, c_credit_lim, c_discount
  INTO :first, :middle, :lastname, :street1, :street2, :city,
       :state, :zip, :phone, :since, :credit, :creditlim, :discount;  -- q23
IF :badcredit THEN
  SELECT c_data INTO :cdata FROM "Customer"
    WHERE c_id = :c AND c_d_id = $2 AND c_w_id = $1;  -- q24
  UPDATE "Customer" SET c_data = :newdata
    WHERE c_id = :c AND c_d_id = $2 AND c_w_id = $1;  -- q25
ENDIF;
INSERT INTO "History" VALUES (:c, $2, $1, $2, $1, :hdate, $3, :hdata);  -- q26
-- @fk q20 = f1(q21)
-- @fk q21 = f2(q22)
-- @fk q21 = f2(q23)
-- @fk q21 = f2(q24)
-- @fk q21 = f2(q25)
-- @fk q23 = f3(q26)
-- @fk q25 = f3(q26)
-- @fk q21 = f4(q26)
COMMIT;

-- program StockLevel as SL
-- Inputs: $1 = d_id, $2 = w_id, $3 = quantity threshold.
SELECT d_next_o_id INTO :o FROM "District" WHERE d_id = $1 AND d_w_id = $2;  -- q27
SELECT ol_i_id FROM "Order_Line"
  WHERE ol_w_id = $2 AND ol_d_id = $1 AND ol_o_id >= :o - 20;  -- q28
SELECT s_i_id FROM "Stock" WHERE s_w_id = $2 AND s_quantity < $3;  -- q29
COMMIT;
