// Package faultfs is the storage seam of the persistence layer: a small
// filesystem interface that internal/snapshot writes through, with a real
// implementation (OS) that passes straight to package os and a deterministic
// fault injector (Injector) that makes crash-safety testable — failed
// syscalls, ENOSPC, torn writes truncated mid-buffer, and crash-points after
// which every operation fails as if the process had been kill -9'd.
//
// The interface is deliberately tiny — exactly the operations an atomic
// temp+fsync+rename snapshot write needs — so alternative backends (an
// embedded KV store, blob storage) can slot in behind the same seam later
// without dragging the whole of package os along.
//
// The OS implementation adds no allocations on the write path beyond what
// package os itself performs (asserted by TestRealFSZeroAllocOverhead); the
// nil-injector question never arises because callers hold the interface and
// the real implementation is the zero value OS{}.
package faultfs

import (
	"io"
	"os"
)

// File is an open file handle on its way to durability: bytes are written,
// fsynced, and the handle closed before the file is renamed into place.
type File interface {
	io.Writer
	// Sync flushes the file's data (and metadata) to stable storage —
	// os.File.Sync on the real filesystem.
	Sync() error
	io.Closer
	// Name returns the path the file was created with.
	Name() string
}

// FS is the filesystem surface of the snapshot store. All paths are
// interpreted as on the host filesystem; implementations wrap every
// operation a crash-safe write sequence performs.
type FS interface {
	// MkdirAll creates the directory and any missing parents.
	MkdirAll(dir string, perm os.FileMode) error
	// Create opens the named file for writing, truncating it if it exists
	// (the store generates process-unique temp names, so truncation only
	// ever hits a stale leftover of a crashed run).
	Create(name string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes the named file.
	Remove(name string) error
	// ReadDir lists the directory, sorted by filename.
	ReadDir(dir string) ([]os.DirEntry, error)
	// ReadFile returns the named file's contents.
	ReadFile(name string) ([]byte, error)
	// SyncDir fsyncs the directory itself, making preceding Create/Rename/
	// Remove directory operations durable. A rename is not crash-durable
	// until the directory that holds the entry is synced.
	SyncDir(dir string) error
}

// OS is the real filesystem: every method passes straight to package os.
// The zero value is ready to use.
type OS struct{}

// MkdirAll is os.MkdirAll.
func (OS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }

// Create opens the file with O_TRUNC semantics (os.Create).
func (OS) Create(name string) (File, error) {
	f, err := os.Create(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Rename is os.Rename.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove is os.Remove.
func (OS) Remove(name string) error { return os.Remove(name) }

// ReadDir is os.ReadDir.
func (OS) ReadDir(dir string) ([]os.DirEntry, error) { return os.ReadDir(dir) }

// ReadFile is os.ReadFile.
func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// SyncDir opens the directory read-only and fsyncs it. On filesystems or
// platforms where directories cannot be fsynced the error is surfaced to
// the caller, which treats the write as failed and retries.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
