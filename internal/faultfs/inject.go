package faultfs

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
)

// Op names one filesystem operation for fault targeting and tracing.
type Op string

// The operation taxonomy. OpAny in a Fault matches every operation.
const (
	OpAny      Op = "any"
	OpMkdirAll Op = "mkdirall"
	OpCreate   Op = "create"
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpClose    Op = "close"
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpReadDir  Op = "readdir"
	OpReadFile Op = "readfile"
	OpSyncDir  Op = "syncdir"
)

// ErrInjected is the default error returned by a firing fault.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrCrashed is returned by every operation after a crash-point fault has
// fired: the simulated process is dead, nothing it does afterwards reaches
// the disk. Tests "restart" by building a fresh store over the same
// directory with a healthy filesystem.
var ErrCrashed = errors.New("faultfs: crashed (simulated kill -9)")

// Fault is one deterministic failure rule. A fault fires when its Op (or
// OpAny) matches and the injector has already seen After matching
// operations — so After=0 hits the first matching op, After=2 the third.
// Count bounds how many times it fires: 0 means once (fail-once), a
// positive count fires on that many consecutive matches, and -1 fires
// forever (fail-after-N-ops, e.g. a full disk that stays full).
type Fault struct {
	Op    Op
	After int
	Count int
	// Err is the error to return; nil means ErrInjected. Use
	// syscall.ENOSPC for disk-full scenarios.
	Err error
	// TornBytes, for OpWrite faults, writes that many bytes of the buffer
	// through to the underlying file before failing — a torn write, the
	// exact failure mode the fsync-before-rename discipline exists for.
	TornBytes int
	// Crash, when true, switches the injector into the crashed state as
	// the fault fires: this operation fails and so does everything after
	// it, as if the process had been kill -9'd at this point.
	Crash bool

	matched int // matching ops seen so far
	fired   int // times this fault has fired
}

// err resolves the fault's error.
func (f *Fault) err() error {
	if f.Err != nil {
		return f.Err
	}
	return ErrInjected
}

// ENOSPC is a convenience constructor: every operation from the (n+1)-th
// onward fails with syscall.ENOSPC — the disk filled up and stayed full.
func ENOSPC(after int) *Fault {
	return &Fault{Op: OpAny, After: after, Count: -1, Err: syscall.ENOSPC}
}

// FailOnce fails the (after+1)-th operation of the given kind, once.
func FailOnce(op Op, after int) *Fault { return &Fault{Op: op, After: after} }

// Torn truncates the (after+1)-th write after n bytes and fails it.
func Torn(after, n int) *Fault { return &Fault{Op: OpWrite, After: after, TornBytes: n} }

// CrashAt simulates kill -9 at the (after+1)-th operation of the given
// kind: that operation and every one after it fail with ErrCrashed.
func CrashAt(op Op, after int) *Fault { return &Fault{Op: op, After: after, Crash: true} }

// TraceEntry records one operation the injector saw, for asserting write
// ordering (the fsync-before-rename discipline) in tests.
type TraceEntry struct {
	Op   Op
	Name string
	Err  error
}

// Injector wraps an FS with a deterministic fault schedule. All methods are
// safe for concurrent use; determinism holds when the operation order is
// deterministic (single-goroutine stores, or per-test serialization).
type Injector struct {
	inner FS

	mu      sync.Mutex
	faults  []*Fault
	crashed bool
	ops     uint64
	trace   []TraceEntry
	tracing bool

	injected atomic.Uint64
}

// NewInjector wraps inner with the given fault schedule.
func NewInjector(inner FS, faults ...*Fault) *Injector {
	return &Injector{inner: inner, faults: faults}
}

// StartTrace begins recording every operation (post-fault decision) so
// tests can assert operation ordering.
func (in *Injector) StartTrace() {
	in.mu.Lock()
	in.tracing = true
	in.trace = in.trace[:0]
	in.mu.Unlock()
}

// Trace returns a copy of the recorded operations.
func (in *Injector) Trace() []TraceEntry {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]TraceEntry(nil), in.trace...)
}

// Injected reports how many faults have fired.
func (in *Injector) Injected() uint64 { return in.injected.Load() }

// Ops reports how many operations the injector has seen.
func (in *Injector) Ops() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops
}

// Crash switches the injector into the crashed state now: every subsequent
// operation fails with ErrCrashed. The chaos harness calls this before
// abandoning a server, so its background flusher can no longer touch the
// directory a "restarted" server is about to read — exactly a kill -9.
func (in *Injector) Crash() {
	in.mu.Lock()
	in.crashed = true
	in.mu.Unlock()
}

// Crashed reports whether a crash-point has fired.
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// decide advances the schedule for one operation and returns the fault that
// fires, if any. The caller performs the operation only when fault is nil
// (torn writes are the one exception, handled in Write).
func (in *Injector) decide(op Op, name string) (*Fault, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.ops++
	if in.crashed {
		in.record(op, name, ErrCrashed)
		return nil, ErrCrashed
	}
	for _, f := range in.faults {
		if f.Op != OpAny && f.Op != op {
			continue
		}
		f.matched++
		if f.matched <= f.After {
			continue
		}
		limit := f.Count
		if limit == 0 {
			limit = 1
		}
		if limit > 0 && f.fired >= limit {
			continue
		}
		f.fired++
		in.injected.Add(1)
		if f.Crash {
			in.crashed = true
			in.record(op, name, ErrCrashed)
			return f, ErrCrashed
		}
		in.record(op, name, f.err())
		return f, f.err()
	}
	in.record(op, name, nil)
	return nil, nil
}

// record appends a trace entry. Caller holds in.mu.
func (in *Injector) record(op Op, name string, err error) {
	if in.tracing {
		in.trace = append(in.trace, TraceEntry{Op: op, Name: name, Err: err})
	}
}

// MkdirAll implements FS.
func (in *Injector) MkdirAll(dir string, perm os.FileMode) error {
	if _, err := in.decide(OpMkdirAll, dir); err != nil {
		return err
	}
	return in.inner.MkdirAll(dir, perm)
}

// Create implements FS; the returned file routes its Write/Sync/Close back
// through the injector.
func (in *Injector) Create(name string) (File, error) {
	if _, err := in.decide(OpCreate, name); err != nil {
		return nil, err
	}
	f, err := in.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &injectedFile{in: in, f: f}, nil
}

// Rename implements FS.
func (in *Injector) Rename(oldpath, newpath string) error {
	if _, err := in.decide(OpRename, newpath); err != nil {
		return err
	}
	return in.inner.Rename(oldpath, newpath)
}

// Remove implements FS.
func (in *Injector) Remove(name string) error {
	if _, err := in.decide(OpRemove, name); err != nil {
		return err
	}
	return in.inner.Remove(name)
}

// ReadDir implements FS.
func (in *Injector) ReadDir(dir string) ([]os.DirEntry, error) {
	if _, err := in.decide(OpReadDir, dir); err != nil {
		return nil, err
	}
	return in.inner.ReadDir(dir)
}

// ReadFile implements FS.
func (in *Injector) ReadFile(name string) ([]byte, error) {
	if _, err := in.decide(OpReadFile, name); err != nil {
		return nil, err
	}
	return in.inner.ReadFile(name)
}

// SyncDir implements FS.
func (in *Injector) SyncDir(dir string) error {
	if _, err := in.decide(OpSyncDir, dir); err != nil {
		return err
	}
	return in.inner.SyncDir(dir)
}

// injectedFile routes the write path of one open file through the injector.
type injectedFile struct {
	in *Injector
	f  File
}

// Write consults the schedule; a torn-write fault writes the truncated
// prefix through before failing, so the bytes really land in the file — the
// failure mode a crash mid-write leaves on disk.
func (jf *injectedFile) Write(p []byte) (int, error) {
	fault, err := jf.in.decide(OpWrite, jf.f.Name())
	if err != nil {
		if fault != nil && fault.TornBytes > 0 && !fault.Crash {
			n := fault.TornBytes
			if n > len(p) {
				n = len(p)
			}
			if wn, werr := jf.f.Write(p[:n]); werr != nil {
				return wn, werr
			}
			return n, fmt.Errorf("faultfs: torn write after %d bytes: %w", n, err)
		}
		return 0, err
	}
	return jf.f.Write(p)
}

// Sync implements File.
func (jf *injectedFile) Sync() error {
	if _, err := jf.in.decide(OpSync, jf.f.Name()); err != nil {
		return err
	}
	return jf.f.Sync()
}

// Close implements File. Close always reaches the real file even when a
// fault fires — leaking an OS file descriptor would turn an injected fault
// into a real resource exhaustion across a long chaos run.
func (jf *injectedFile) Close() error {
	_, err := jf.in.decide(OpClose, jf.f.Name())
	cerr := jf.f.Close()
	if err != nil {
		return err
	}
	return cerr
}

// Name implements File.
func (jf *injectedFile) Name() string { return jf.f.Name() }
