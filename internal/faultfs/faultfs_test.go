package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// writeSequence runs one full crash-safe write sequence (create, write,
// sync, close, rename, syncdir) through fs, returning the first error.
func writeSequence(fs FS, dir, final string, data []byte) error {
	tmp := filepath.Join(dir, "x.tmp")
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fs.Remove(tmp)
		return err
	}
	if err := fs.Rename(tmp, filepath.Join(dir, final)); err != nil {
		fs.Remove(tmp)
		return err
	}
	return fs.SyncDir(dir)
}

func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var fs OS
	if err := writeSequence(fs, dir, "a.json", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile(filepath.Join(dir, "a.json"))
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	entries, err := fs.ReadDir(dir)
	if err != nil || len(entries) != 1 || entries[0].Name() != "a.json" {
		t.Fatalf("ReadDir = %v, %v", entries, err)
	}
}

// TestFailOnce: the first matching op fails, the retry succeeds — the
// schedule is consumed deterministically.
func TestFailOnce(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS{}, FailOnce(OpRename, 0))
	if err := writeSequence(in, dir, "a.json", []byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("first write sequence error = %v, want ErrInjected", err)
	}
	if err := writeSequence(in, dir, "a.json", []byte("x")); err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	if got := in.Injected(); got != 1 {
		t.Fatalf("Injected = %d, want 1", got)
	}
}

// TestENOSPC: every op from the trigger point onward fails with ENOSPC —
// the disk stays full until the injector is replaced.
func TestENOSPC(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS{}, ENOSPC(2))
	var errs int
	for i := 0; i < 3; i++ {
		if err := writeSequence(in, dir, "a.json", []byte("x")); err != nil {
			if !errors.Is(err, syscall.ENOSPC) {
				t.Fatalf("error = %v, want ENOSPC", err)
			}
			errs++
		}
	}
	if errs != 3 {
		t.Fatalf("got %d failed sequences, want all 3 (first fails at its third op)", errs)
	}
}

// TestTornWrite: the fault writes the prefix through and fails, so the
// partial bytes are really on disk — the torn file a crash leaves behind.
func TestTornWrite(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS{}, Torn(0, 3))
	tmp := filepath.Join(dir, "torn.tmp")
	f, err := in.Create(tmp)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdef"))
	if err == nil || n != 3 {
		t.Fatalf("torn write = %d, %v; want 3 bytes and an error", n, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(tmp)
	if err != nil || string(got) != "abc" {
		t.Fatalf("torn file = %q, %v; want the 3-byte prefix", got, err)
	}
}

// TestCrashPoint: from the crash on, every operation fails with ErrCrashed,
// including reads — the simulated process is dead.
func TestCrashPoint(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS{}, CrashAt(OpRename, 0))
	err := writeSequence(in, dir, "a.json", []byte("x"))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("error = %v, want ErrCrashed", err)
	}
	if !in.Crashed() {
		t.Fatal("injector not crashed after crash-point fired")
	}
	if _, err := in.ReadFile(filepath.Join(dir, "a.json")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash read error = %v, want ErrCrashed", err)
	}
	// The final file never appeared; the temp file's removal also failed
	// (the process was dead), so it is still on disk for boot recovery to
	// sweep.
	if _, err := os.Stat(filepath.Join(dir, "a.json")); !os.IsNotExist(err) {
		t.Fatalf("final file exists after crash before rename: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "x.tmp")); err != nil {
		t.Fatalf("temp file missing after crash: %v", err)
	}
}

// TestTrace: the injector records the operation order, so tests can assert
// the fsync discipline (sync before rename, directory sync after).
func TestTrace(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS{})
	in.StartTrace()
	if err := writeSequence(in, dir, "a.json", []byte("x")); err != nil {
		t.Fatal(err)
	}
	want := []Op{OpCreate, OpWrite, OpSync, OpClose, OpRename, OpSyncDir}
	trace := in.Trace()
	if len(trace) != len(want) {
		t.Fatalf("trace has %d ops, want %d: %v", len(trace), len(want), trace)
	}
	for i, e := range trace {
		if e.Op != want[i] {
			t.Fatalf("trace[%d] = %s, want %s", i, e.Op, want[i])
		}
	}
}

// TestFailAfterNCount: a counted fault fires exactly Count times then lets
// the operation through — the bounded-retry scenarios of the flusher tests.
func TestFailAfterNCount(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS{}, &Fault{Op: OpRename, Count: 2})
	fails := 0
	for i := 0; i < 4; i++ {
		if err := writeSequence(in, dir, "a.json", []byte("x")); err != nil {
			fails++
		}
	}
	if fails != 2 {
		t.Fatalf("fails = %d, want exactly 2", fails)
	}
}

// TestRealFSZeroAllocOverhead pins the seam's happy-path cost: writing
// through the OS implementation and through a fault-free injector allocates
// nothing beyond what package os itself does (zero allocations per Write on
// an open file). The CI allocs gate enforces the same bound end to end via
// BenchmarkServerOverhead.
func TestRealFSZeroAllocOverhead(t *testing.T) {
	dir := t.TempDir()
	buf := []byte("0123456789abcdef")

	var fs OS
	f, err := fs.Create(filepath.Join(dir, "raw"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := f.Write(buf); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("OS wrapper Write = %.1f allocs/op, want 0", allocs)
	}

	in := NewInjector(OS{})
	jf, err := in.Create(filepath.Join(dir, "injected"))
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := jf.Write(buf); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("fault-free injected Write = %.1f allocs/op, want 0", allocs)
	}
}
