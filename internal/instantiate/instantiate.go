// Package instantiate turns linear transaction programs into concrete
// transactions over abstract tuples, following the instantiation rules of
// Section 5.2: key-based statements become single-tuple operations,
// predicate-based statements become atomic chunks starting with a predicate
// read, and foreign-key annotations constrain which tuples distinct
// statements may touch.
package instantiate

import (
	"fmt"

	"repro/internal/btp"
	"repro/internal/relschema"
	"repro/internal/schedule"
)

// Assignment chooses the tuples an instantiation touches.
type Assignment struct {
	// Key maps each key-based statement occurrence to the name of the
	// tuple it addresses.
	Key map[*btp.StmtOcc]string
	// Pred maps each predicate-based occurrence to the names of the tuples
	// its chunk reads (and updates/deletes, for pred upd / pred del). The
	// list may be empty: a predicate may select no tuples.
	Pred map[*btp.StmtOcc][]string
	// FK gives the foreign-key valuation used to check annotations: for a
	// foreign key name f, FK[f] maps a domain-tuple name to its
	// range-tuple name. Only needed when the LTP carries annotations.
	FK map[string]map[string]string
}

// Instantiate builds the transaction with the given id from an LTP and an
// assignment. The resulting transaction satisfies the structural
// assumptions of Section 3.3 (at most one read and one write per tuple) or
// an error is returned; foreign-key annotations of the originating BTP are
// validated against the assignment's FK valuation.
func Instantiate(schema *relschema.Schema, ltp *btp.LTP, id int, asg Assignment) (*schedule.Transaction, error) {
	t := schedule.NewTransaction(id)
	t.Label = ltp.Name

	tupleOf := func(occ *btp.StmtOcc) (schedule.TupleID, error) {
		name, ok := asg.Key[occ]
		if !ok {
			return schedule.TupleID{}, fmt.Errorf("instantiate: %s: no tuple assigned to key-based %s", ltp.Name, occ)
		}
		return schedule.Tuple(occ.Stmt.Rel, name), nil
	}
	setOf := func(o btp.OptAttrs) relschema.AttrSet {
		if !o.Defined {
			return nil
		}
		return o.Set
	}

	for _, occ := range ltp.Stmts {
		q := occ.Stmt
		switch q.Type {
		case btp.Ins:
			tu, err := tupleOf(occ)
			if err != nil {
				return nil, err
			}
			t.Insert(tu, setOf(q.WriteSet))
		case btp.KeySel:
			tu, err := tupleOf(occ)
			if err != nil {
				return nil, err
			}
			t.ReadSet(tu, setOf(q.ReadSet))
		case btp.KeyDel:
			tu, err := tupleOf(occ)
			if err != nil {
				return nil, err
			}
			t.Delete(tu, setOf(q.WriteSet))
		case btp.KeyUpd:
			tu, err := tupleOf(occ)
			if err != nil {
				return nil, err
			}
			start := len(t.Ops)
			// The read half of the atomic update is only materialized when
			// the statement observes at least one attribute; compare T2 in
			// Figure 3, where q5 (ReadSet = {}) instantiates to a single
			// write operation.
			if rs := setOf(q.ReadSet); rs.Len() > 0 {
				t.ReadSet(tu, rs)
			}
			t.WriteSet(tu, setOf(q.WriteSet))
			if len(t.Ops)-start > 1 {
				t.AddChunk(start, len(t.Ops)-1)
			}
		case btp.PredSel, btp.PredUpd, btp.PredDel:
			names := asg.Pred[occ]
			start := len(t.Ops)
			t.PredReadSet(q.Rel, setOf(q.PReadSet))
			for _, name := range names {
				tu := schedule.Tuple(q.Rel, name)
				switch q.Type {
				case btp.PredSel:
					t.ReadSet(tu, setOf(q.ReadSet))
				case btp.PredUpd:
					if rs := setOf(q.ReadSet); rs.Len() > 0 {
						t.ReadSet(tu, rs)
					}
					t.WriteSet(tu, setOf(q.WriteSet))
				case btp.PredDel:
					t.Delete(tu, setOf(q.WriteSet))
				}
			}
			t.AddChunk(start, len(t.Ops)-1)
		default:
			return nil, fmt.Errorf("instantiate: %s: unsupported statement type %v", ltp.Name, q.Type)
		}
	}
	t.Commit()
	if err := t.ValidateStrict(); err != nil {
		return nil, err
	}
	if err := checkFKs(ltp, asg); err != nil {
		return nil, err
	}
	return t, nil
}

// checkFKs validates the assignment against the LTP's foreign-key
// annotations: for every annotation q_j = f(q_i), every tuple assigned to
// an occurrence of q_i must map under FK[f] to the tuple assigned to every
// occurrence of q_j.
func checkFKs(ltp *btp.LTP, asg Assignment) error {
	for _, c := range ltp.FKs() {
		valuation := asg.FK[c.FK]
		var srcTuples []string
		for _, occ := range ltp.Stmts {
			if occ.Stmt != c.Src {
				continue
			}
			if c.Src.Type.IsKeyBased() {
				if n, ok := asg.Key[occ]; ok {
					srcTuples = append(srcTuples, n)
				}
			} else {
				srcTuples = append(srcTuples, asg.Pred[occ]...)
			}
		}
		var dstTuples []string
		for _, occ := range ltp.Stmts {
			if occ.Stmt != c.Dst {
				continue
			}
			if n, ok := asg.Key[occ]; ok {
				dstTuples = append(dstTuples, n)
			}
		}
		if len(dstTuples) == 0 {
			continue
		}
		for _, src := range srcTuples {
			img, ok := valuation[src]
			if !ok {
				return fmt.Errorf("instantiate: %s: annotation %s: no foreign-key image for tuple %s", ltp.Name, c, src)
			}
			for _, dst := range dstTuples {
				if img != dst {
					return fmt.Errorf("instantiate: %s: annotation %s violated: f(%s)=%s but %s accesses %s",
						ltp.Name, c, src, img, c.Dst.Name, dst)
				}
			}
		}
	}
	return nil
}
