package instantiate

import (
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/btp"
	"repro/internal/schedule"
)

// placeBidLTPs returns the two unfoldings of PlaceBid.
func placeBidLTPs(t *testing.T) (withUpd, withoutUpd *btp.LTP) {
	t.Helper()
	b := benchmarks.Auction()
	ltps := btp.Unfold2(b.Program("PlaceBid"))
	if len(ltps) != 2 {
		t.Fatalf("PlaceBid unfolds to %d LTPs", len(ltps))
	}
	return ltps[0], ltps[1]
}

func auctionAssignment(ltp *btp.LTP) Assignment {
	asg := Assignment{
		Key: map[*btp.StmtOcc]string{},
		FK: map[string]map[string]string{
			"f1": {"u1": "t1"},
			"f2": {"l1": "t1", "l2": "t1"},
		},
	}
	for _, occ := range ltp.Stmts {
		switch occ.Stmt.Rel {
		case "Buyer":
			asg.Key[occ] = "t1"
		case "Bids":
			asg.Key[occ] = "u1"
		case "Log":
			asg.Key[occ] = "l1"
		}
	}
	return asg
}

// TestPlaceBidInstantiation reproduces T2 of Figure 3: PlaceBid with the
// conditional update instantiates to R[t1]W[t1] R[u1] W[u1] I[l2] C with
// the Buyer update as an atomic chunk and no read for q5 (ReadSet = {}).
func TestPlaceBidInstantiation(t *testing.T) {
	b := benchmarks.Auction()
	withUpd, withoutUpd := placeBidLTPs(t)

	txn, err := Instantiate(b.Schema, withUpd, 2, auctionAssignment(withUpd))
	if err != nil {
		t.Fatal(err)
	}
	kinds := []schedule.OpKind{}
	for _, op := range txn.Ops {
		kinds = append(kinds, op.Kind)
	}
	want := []schedule.OpKind{
		schedule.OpRead, schedule.OpWrite, // q3 chunk
		schedule.OpRead,   // q4
		schedule.OpWrite,  // q5 (no read: ReadSet empty)
		schedule.OpInsert, // q6
		schedule.OpCommit,
	}
	if len(kinds) != len(want) {
		t.Fatalf("ops = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("op %d = %s, want %s (full: %v)", i, kinds[i], want[i], kinds)
		}
	}
	if len(txn.Chunks) != 1 || txn.Chunks[0] != (schedule.Chunk{From: 0, To: 1}) {
		t.Fatalf("chunks = %v", txn.Chunks)
	}
	if txn.Label != withUpd.Name {
		t.Errorf("label = %q", txn.Label)
	}

	// The no-update unfolding has one fewer operation.
	txn2, err := Instantiate(b.Schema, withoutUpd, 1, auctionAssignment(withoutUpd))
	if err != nil {
		t.Fatal(err)
	}
	if len(txn2.Ops) != len(txn.Ops)-1 {
		t.Fatalf("PlaceBid2 ops = %d, want %d", len(txn2.Ops), len(txn.Ops)-1)
	}
}

// TestPredicateInstantiation checks FindBids: the predicate selection
// becomes a PR followed by reads, all in one chunk.
func TestPredicateInstantiation(t *testing.T) {
	b := benchmarks.Auction()
	fb := btp.Unfold2(b.Program("FindBids"))[0]
	asg := Assignment{
		Key:  map[*btp.StmtOcc]string{},
		Pred: map[*btp.StmtOcc][]string{},
	}
	for _, occ := range fb.Stmts {
		switch occ.Stmt.Type {
		case btp.KeyUpd:
			asg.Key[occ] = "t2"
		case btp.PredSel:
			asg.Pred[occ] = []string{"u1", "u2", "u3"}
		}
	}
	txn, err := Instantiate(b.Schema, fb, 3, asg)
	if err != nil {
		t.Fatal(err)
	}
	// R W | PR R R R | C = 7 ops, 2 chunks.
	if len(txn.Ops) != 7 {
		t.Fatalf("ops = %v", txn.Ops)
	}
	if len(txn.Chunks) != 2 {
		t.Fatalf("chunks = %v", txn.Chunks)
	}
	if txn.Ops[2].Kind != schedule.OpPredRead {
		t.Fatalf("op 2 = %s, want PR", txn.Ops[2])
	}
	if c := txn.Chunks[1]; c.From != 2 || c.To != 5 {
		t.Fatalf("predicate chunk = %v", c)
	}
	// Empty predicate match: just the PR in its chunk.
	asg.Pred[fb.Stmts[1]] = nil
	txn, err = Instantiate(b.Schema, fb, 4, asg)
	if err != nil {
		t.Fatal(err)
	}
	if len(txn.Ops) != 4 {
		t.Fatalf("empty-match ops = %v", txn.Ops)
	}
}

func TestMissingAssignment(t *testing.T) {
	b := benchmarks.Auction()
	fb := btp.Unfold2(b.Program("FindBids"))[0]
	_, err := Instantiate(b.Schema, fb, 1, Assignment{Key: map[*btp.StmtOcc]string{}})
	if err == nil {
		t.Fatal("missing key assignment accepted")
	}
}

// TestFKViolationRejected: an assignment violating a foreign-key annotation
// is rejected.
func TestFKViolationRejected(t *testing.T) {
	b := benchmarks.Auction()
	withUpd, _ := placeBidLTPs(t)
	asg := auctionAssignment(withUpd)
	// Map the bid tuple to the wrong buyer.
	asg.FK["f1"] = map[string]string{"u1": "WRONG"}
	if _, err := Instantiate(b.Schema, withUpd, 1, asg); err == nil {
		t.Fatal("FK-violating assignment accepted")
	}
	// Missing valuation is also an error.
	asg.FK["f1"] = nil
	if _, err := Instantiate(b.Schema, withUpd, 1, asg); err == nil {
		t.Fatal("missing FK valuation accepted")
	}
}

// TestStrictFormEnforced: assigning the same tuple to two reading
// statements of one program violates the one-read-per-tuple form.
func TestStrictFormEnforced(t *testing.T) {
	b := benchmarks.SmallBank()
	am := btp.Unfold2(b.Program("Amalgamate"))[0]
	asg := Assignment{
		Key: map[*btp.StmtOcc]string{},
		FK: map[string]map[string]string{
			"fS": {"a": "s"}, "fC": {"a": "c"},
		},
	}
	for _, occ := range am.Stmts {
		switch occ.Stmt.Rel {
		case "Account":
			asg.Key[occ] = "a" // q1 and q2 both read Account:a
		case "Savings":
			asg.Key[occ] = "s"
		case "Checking":
			asg.Key[occ] = "c" // q4 and q5 both write Checking:c
		}
	}
	if _, err := Instantiate(b.Schema, am, 1, asg); err == nil {
		t.Fatal("double read/write of one tuple accepted in strict form")
	}
}

// TestPredUpdateInstantiation checks the pred upd chunk shape
// PR (R W)* with reads omitted when ReadSet is empty (TPC-C q5).
func TestPredUpdateInstantiation(t *testing.T) {
	b := benchmarks.TPCC()
	ltps := btp.Unfold2(b.Program("Delivery"))
	var oneIter *btp.LTP
	for _, l := range ltps {
		if len(l.Stmts) == 7 {
			oneIter = l
		}
	}
	if oneIter == nil {
		t.Fatal("missing one-iteration Delivery unfolding")
	}
	asg := Assignment{
		Key:  map[*btp.StmtOcc]string{},
		Pred: map[*btp.StmtOcc][]string{},
	}
	for _, occ := range oneIter.Stmts {
		q := occ.Stmt
		switch {
		case q.Type.IsKeyBased():
			asg.Key[occ] = q.Rel + "1"
		default:
			asg.Pred[occ] = []string{q.Rel + "1", q.Rel + "2"}
		}
	}
	// Drop the FK annotations for this shape test by clearing the origin.
	copyLTP := btp.NewLTP(oneIter.Name, nil, oneIter.Statements()...)
	asg2 := Assignment{Key: map[*btp.StmtOcc]string{}, Pred: map[*btp.StmtOcc][]string{}}
	for i, occ := range copyLTP.Stmts {
		orig := oneIter.Stmts[i]
		if v, ok := asg.Key[orig]; ok {
			asg2.Key[occ] = v
		}
		if v, ok := asg.Pred[orig]; ok {
			asg2.Pred[occ] = v
		}
	}
	txn, err := Instantiate(b.Schema, copyLTP, 1, asg2)
	if err != nil {
		t.Fatal(err)
	}
	// q5 is a pred upd with empty ReadSet over two tuples: PR W W chunk.
	foundPredUpdChunk := false
	for _, c := range txn.Chunks {
		if txn.Ops[c.From].Kind == schedule.OpPredRead && c.To-c.From == 2 &&
			txn.Ops[c.From+1].Kind == schedule.OpWrite && txn.Ops[c.From+2].Kind == schedule.OpWrite {
			foundPredUpdChunk = true
		}
	}
	if !foundPredUpdChunk {
		t.Errorf("pred upd chunk PR W W not found; ops=%v chunks=%v", txn.Ops, txn.Chunks)
	}
}
